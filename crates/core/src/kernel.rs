//! The basic kernel construction (Section 3, after Dolev et al. 1984).
//!
//! Given a minimal separating set `M` of size `t + 1` in a
//! `(t+1)`-connected graph, the *kernel routing* consists of
//!
//! * KERNEL 1 — a tree routing from each node `x ∉ M` into `M`, and
//! * KERNEL 2 — a direct edge route between any two adjacent nodes,
//!
//! taken bidirectionally. Theorem 3 (Dolev et al.): the kernel routing
//! is `(2t, t)`-tolerant. Theorem 4 (this paper): it is in fact
//! `(4, ⌊t/2⌋)`-tolerant — a *constant* bound when only half the
//! connectivity worth of faults occur.

use ftr_graph::{connectivity, Graph, Node, NodeSet, Path};

use crate::par;
use crate::tree::tree_routing;
use crate::{Guarantee, Routing, RoutingError, RoutingKind, TheoremId};

/// The kernel routing of a graph, with its separator and parameters.
///
/// # Example
///
/// ```
/// use ftr_core::{KernelRouting, RouteTable};
/// use ftr_graph::{gen, NodeSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = gen::petersen(); // 3-connected: t = 2
/// let kernel = KernelRouting::build(&g)?;
/// assert_eq!(kernel.tolerated_faults(), 2);
/// let s = kernel.routing().surviving(&NodeSet::from_nodes(10, [4, 7]));
/// assert!(s.diameter().expect("connected") <= 4); // Theorem 3: <= 2t = 4
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct KernelRouting {
    routing: Routing,
    separator: Vec<Node>,
    t: usize,
}

impl KernelRouting {
    /// Builds the kernel routing on `g`, choosing a minimum separating
    /// set as the concentrator.
    ///
    /// For complete graphs — which have no separating set — the routing
    /// degenerates to KERNEL 2 alone (every pair is adjacent), which is
    /// `(1, n-2)`-tolerant.
    ///
    /// # Errors
    ///
    /// * [`RoutingError::InsufficientConnectivity`] if `g` is
    ///   disconnected.
    /// * Propagates construction failures from the tree routings.
    pub fn build(g: &Graph) -> Result<Self, RoutingError> {
        let kappa = connectivity::vertex_connectivity(g);
        if kappa == 0 {
            return Err(RoutingError::InsufficientConnectivity {
                needed: 1,
                found: 0,
            });
        }
        let separator = match connectivity::min_separator(g) {
            Some(sep) => sep,
            None => {
                // Complete graph: direct edges route every pair.
                let mut routing = Routing::new(g.node_count(), RoutingKind::Bidirectional);
                insert_edge_routes(&mut routing, g)?;
                routing.freeze();
                return Ok(KernelRouting {
                    routing,
                    separator: Vec::new(),
                    t: kappa - 1,
                });
            }
        };
        Self::build_with_separator(g, &separator, kappa)
    }

    /// Builds the kernel routing with a caller-supplied separating set
    /// (used by the augmentation construction of Section 6 and by
    /// ablations). `k` is the number of disjoint paths per tree routing,
    /// normally `t + 1 = κ(G)`.
    ///
    /// # Errors
    ///
    /// * [`RoutingError::PropertyNotSatisfied`] if `separator` does not
    ///   separate `g` or is smaller than `k`.
    /// * Propagates tree-routing failures.
    pub fn build_with_separator(
        g: &Graph,
        separator: &NodeSet,
        k: usize,
    ) -> Result<Self, RoutingError> {
        if separator.len() < k {
            return Err(RoutingError::ConcentratorTooSmall {
                needed: k,
                found: separator.len(),
            });
        }
        if !connectivity::is_separator(g, separator) {
            return Err(RoutingError::property(
                "the supplied node set does not separate the graph",
            ));
        }
        let mut routing = Routing::new(g.node_count(), RoutingKind::Bidirectional);
        // KERNEL 2 first: the shortcut rule makes tree-routing edges agree.
        insert_edge_routes(&mut routing, g)?;
        // KERNEL 1: tree routings into M, derived per source in parallel
        // (each source's max-flow is independent; insertion stays
        // sequential and in source order, so conflicts and the final
        // table are identical to the serial build).
        let outside: Vec<Node> = g.nodes().filter(|&x| !separator.contains(x)).collect();
        let batches = par::ordered_map(outside.len(), par::default_threads(), |i| {
            tree_routing(g, outside[i], separator, k)
        });
        for batch in batches {
            for p in batch? {
                routing.insert(p)?;
            }
        }
        routing.freeze();
        Ok(KernelRouting {
            routing,
            separator: separator.iter().collect(),
            t: k - 1,
        })
    }

    /// The underlying route table.
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// Consumes the construction, returning the owned route table (the
    /// scheme API's hand-off into [`crate::BuiltRouting`]).
    pub fn into_routing(self) -> Routing {
        self.routing
    }

    /// The separating set `M` used as concentrator (empty for complete
    /// graphs).
    pub fn separator(&self) -> &[Node] {
        &self.separator
    }

    /// The number of faults `t` the construction tolerates
    /// (connectivity − 1).
    pub fn tolerated_faults(&self) -> usize {
        self.t
    }

    fn guarantee(&self, theorem: TheoremId, diameter: u32, faults: usize) -> Guarantee {
        Guarantee {
            scheme: "kernel",
            theorem,
            diameter: if self.separator.is_empty() {
                1
            } else {
                diameter
            },
            faults,
            routes: self.routing.route_count(),
            memory_bytes: self.routing.memory_bytes(),
            audited: false,
        }
    }

    /// Theorem 3's guarantee: `(max{2t, 4}, t)`-tolerance (`(1, t)` for
    /// complete graphs, which route every pair directly).
    pub fn guarantee_theorem_3(&self) -> Guarantee {
        self.guarantee(TheoremId::Theorem3, (2 * self.t as u32).max(4), self.t)
    }

    /// Theorem 4's guarantee: `(4, ⌊t/2⌋)`-tolerance.
    pub fn guarantee_theorem_4(&self) -> Guarantee {
        self.guarantee(TheoremId::Theorem4, 4, self.t / 2)
    }

    /// The tightest guarantee covering a fault budget of `f` (clamped to
    /// the tolerance `t`): Theorem 4's constant bound while
    /// `f <= ⌊t/2⌋`, Theorem 3's `max{2t, 4}` beyond.
    pub fn guarantee_for_budget(&self, f: usize) -> Guarantee {
        let f = f.min(self.t);
        if f <= self.t / 2 {
            self.guarantee(TheoremId::Theorem4, 4, f)
        } else {
            self.guarantee(TheoremId::Theorem3, (2 * self.t as u32).max(4), f)
        }
    }
}

/// Inserts a bidirectional direct edge route for every edge of `g`.
pub(crate) fn insert_edge_routes(routing: &mut Routing, g: &Graph) -> Result<(), RoutingError> {
    for (u, v) in g.edges() {
        routing.insert(Path::edge(u, v).expect("graph edges join distinct nodes"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RouteTable;
    use ftr_graph::gen;

    #[test]
    fn kernel_routes_every_outside_node_to_separator() {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        kernel.routing().validate(&g).unwrap();
        assert_eq!(kernel.separator().len(), 3);
        let m: NodeSet = NodeSet::from_nodes(10, kernel.separator().iter().copied());
        for x in g.nodes() {
            if m.contains(x) {
                continue;
            }
            let targets: Vec<Node> = kernel
                .separator()
                .iter()
                .copied()
                .filter(|&mm| kernel.routing().route(x, mm).is_some())
                .collect();
            assert_eq!(targets.len(), 3, "x={x} must route to all of M");
        }
    }

    #[test]
    fn kernel_theorem_3_bound_exhaustive_on_cycle() {
        // C6 is 2-connected: t = 1, bound 2t = 2 (max(2t,4) per Dolev et
        // al. is 4; the raw 2t bound may be beaten by small cases, so we
        // check the claim object instead).
        let g = gen::cycle(6).unwrap();
        let kernel = KernelRouting::build(&g).unwrap();
        let claim = kernel.guarantee_theorem_3().claim();
        for f in g.nodes() {
            let faults = NodeSet::from_nodes(6, [f]);
            let s = kernel.routing().surviving(&faults);
            let d = s.diameter().expect("2-connected survives 1 fault");
            assert!(d <= claim.diameter, "fault {f}: diameter {d}");
        }
    }

    #[test]
    fn kernel_theorem_4_bound_exhaustive_on_torus() {
        // 3x4 torus: κ = 4, t = 3, ⌊t/2⌋ = 1 fault, bound 4.
        let g = gen::torus(3, 4).unwrap();
        let kernel = KernelRouting::build(&g).unwrap();
        assert_eq!(kernel.tolerated_faults(), 3);
        for f in g.nodes() {
            let faults = NodeSet::from_nodes(12, [f]);
            let s = kernel.routing().surviving(&faults);
            let d = s.diameter().expect("4-connected survives 1 fault");
            assert!(d <= 4, "fault {f}: diameter {d} exceeds Theorem 4 bound");
        }
    }

    #[test]
    fn complete_graph_degenerates_to_edges() {
        let g = gen::complete(6).unwrap();
        let kernel = KernelRouting::build(&g).unwrap();
        assert!(kernel.separator().is_empty());
        assert_eq!(kernel.tolerated_faults(), 4);
        let s = kernel
            .routing()
            .surviving(&NodeSet::from_nodes(6, [0, 1, 2, 3]));
        assert_eq!(s.diameter(), Some(1));
    }

    #[test]
    fn disconnected_graph_rejected() {
        let g = Graph::new(4);
        assert!(matches!(
            KernelRouting::build(&g),
            Err(RoutingError::InsufficientConnectivity { .. })
        ));
    }

    #[test]
    fn guarantees_are_budget_aware() {
        let g = gen::torus(3, 4).unwrap(); // t = 3
        let kernel = KernelRouting::build(&g).unwrap();
        let g3 = kernel.guarantee_theorem_3();
        let g4 = kernel.guarantee_theorem_4();
        assert_eq!((g3.diameter, g3.faults), (6, 3));
        assert_eq!((g4.diameter, g4.faults), (4, 1));
        assert_eq!(g3.routes, kernel.routing().route_count());
        assert_eq!(
            kernel.guarantee_for_budget(1).theorem,
            crate::TheoremId::Theorem4
        );
        assert_eq!(
            kernel.guarantee_for_budget(2).theorem,
            crate::TheoremId::Theorem3
        );
        assert_eq!(kernel.guarantee_for_budget(99).faults, 3, "clamped to t");
        assert_eq!(g3.claim().diameter, 6);
        assert_eq!(g4.claim(), kernel.guarantee_for_budget(1).claim());
    }

    #[test]
    fn custom_separator_must_separate() {
        let g = gen::cycle(6).unwrap();
        let not_sep = NodeSet::from_nodes(6, [0, 1]);
        assert!(matches!(
            KernelRouting::build_with_separator(&g, &not_sep, 2),
            Err(RoutingError::PropertyNotSatisfied { .. })
        ));
        let too_small = NodeSet::from_nodes(6, [0]);
        assert!(matches!(
            KernelRouting::build_with_separator(&g, &too_small, 2),
            Err(RoutingError::ConcentratorTooSmall { .. })
        ));
        let sep = NodeSet::from_nodes(6, [0, 3]);
        let kernel = KernelRouting::build_with_separator(&g, &sep, 2).unwrap();
        kernel.routing().validate(&g).unwrap();
    }
}

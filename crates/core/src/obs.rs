//! Feature-gated batch-kernel counters for the observability layer.
//!
//! Compiled only under the `obs-counters` feature (which also enables
//! `ftr-graph/obs-counters` for the BFS-level counters underneath).
//! Cost when enabled: two relaxed atomic adds per
//! [`crate::RouteTable::surviving_diameter_batch`] invocation.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Batched surviving-diameter kernel invocations.
pub static BATCH_CALLS: AtomicU64 = AtomicU64::new(0);
/// Fault sets evaluated through the batched kernel.
pub static BATCH_SETS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of [`BATCH_CALLS`].
pub fn batch_calls() -> u64 {
    BATCH_CALLS.load(Relaxed)
}

/// Snapshot of [`BATCH_SETS`].
pub fn batch_sets() -> u64 {
    BATCH_SETS.load(Relaxed)
}

//! The unified construction surface: every routing scheme of the paper
//! behind one [`Scheme`] trait.
//!
//! The paper is a menu of constructions, each with its own applicability
//! condition and tolerance theorem. This module turns that menu into a
//! first-class API:
//!
//! * a [`Guarantee`] machine-encodes one theorem's bound — the theorem
//!   id, the tolerated fault count `f`, the surviving-diameter bound
//!   `d`, and the route-count/memory cost of achieving it;
//! * a [`Scheme`] answers [`Scheme::applicability`] ("can this
//!   construction run on this graph, and what would it promise?")
//!   without building anything, and [`Scheme::build`] produces a
//!   [`BuiltRouting`] bundling the table with its guarantee and
//!   metadata;
//! * the [`SchemeRegistry`] holds every construction of the paper;
//! * a [`SchemeSpec`] is the parseable textual name of a scheme plus
//!   parameters (`kernel`, `circular:k=6`, `bipolar:bi`, …), shared by
//!   `ftr-served`, the load generator and the experiment binaries.
//!
//! The [`crate::Planner`] sits on top: given a graph and a
//! fault/diameter target it surveys the registry, builds the applicable
//! candidates in parallel and ranks them by guarantee and cost.

use std::fmt;
use std::str::FromStr;

use ftr_graph::{analysis, connectivity, Graph, Node, NodeSet};

use crate::concentrator::NeighborhoodConcentrator;
use crate::error::{Inapplicable, InapplicableReason};
use crate::{
    concentrator_multirouting, full_multirouting, verify_tolerance, AugmentedKernelRouting,
    BipolarRouting, CircularRouting, Compile, FaultStrategy, HypercubeRouting, KernelRouting,
    MultiRouting, Routing, RoutingError, RoutingKind, ToleranceClaim, ToleranceReport,
    TriCircularRouting, TriCircularVariant,
};

// ------------------------------------------------------------- guarantees

/// Which result of the paper backs a [`Guarantee`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TheoremId {
    /// Theorem 3 (Dolev et al.): the kernel routing is
    /// `(max{2t, 4}, t)`-tolerant.
    Theorem3,
    /// Theorem 4: the kernel routing is `(4, ⌊t/2⌋)`-tolerant.
    Theorem4,
    /// Theorem 10: the circular routing is `(6, t)`-tolerant.
    Theorem10,
    /// Theorem 13: the tri-circular routing is `(4, t)`-tolerant.
    Theorem13,
    /// Remark 14: the small tri-circular routing is `(5, t)`-tolerant
    /// (construction reconstructed; bound validated empirically).
    Remark14,
    /// Theorem 20: the unidirectional bipolar routing is
    /// `(4, t)`-tolerant.
    Theorem20,
    /// Theorem 23: the bidirectional bipolar routing is
    /// `(5, t)`-tolerant.
    Theorem23,
    /// Section 6 (1): `t + 1` parallel routes everywhere give surviving
    /// diameter 1.
    Section6Full,
    /// Section 6 (2): `t + 1` parallel routes inside the concentrator
    /// give surviving diameter 3.
    Section6Concentrator,
    /// Section 6: clique-augmenting the kernel separator gives
    /// `(3, t)`-tolerance.
    Section6Augment,
    /// The hypercube baseline: bit-fixing contains every edge route, so
    /// the surviving route graph contains the faulted hypercube, whose
    /// fault diameter under `d - 1` node faults is `d + 1`.
    FaultDiameter,
}

impl TheoremId {
    /// A short, space-free token (used in snapshot files and wire
    /// replies); parsed back by [`TheoremId::from_token`].
    pub fn token(self) -> &'static str {
        match self {
            TheoremId::Theorem3 => "thm3",
            TheoremId::Theorem4 => "thm4",
            TheoremId::Theorem10 => "thm10",
            TheoremId::Theorem13 => "thm13",
            TheoremId::Remark14 => "rem14",
            TheoremId::Theorem20 => "thm20",
            TheoremId::Theorem23 => "thm23",
            TheoremId::Section6Full => "sec6-full",
            TheoremId::Section6Concentrator => "sec6-conc",
            TheoremId::Section6Augment => "sec6-augment",
            TheoremId::FaultDiameter => "fault-diam",
        }
    }

    /// Parses a [`TheoremId::token`] back.
    pub fn from_token(token: &str) -> Option<TheoremId> {
        [
            TheoremId::Theorem3,
            TheoremId::Theorem4,
            TheoremId::Theorem10,
            TheoremId::Theorem13,
            TheoremId::Remark14,
            TheoremId::Theorem20,
            TheoremId::Theorem23,
            TheoremId::Section6Full,
            TheoremId::Section6Concentrator,
            TheoremId::Section6Augment,
            TheoremId::FaultDiameter,
        ]
        .into_iter()
        .find(|id| id.token() == token)
    }
}

impl fmt::Display for TheoremId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            TheoremId::Theorem3 => "Theorem 3",
            TheoremId::Theorem4 => "Theorem 4",
            TheoremId::Theorem10 => "Theorem 10",
            TheoremId::Theorem13 => "Theorem 13",
            TheoremId::Remark14 => "Remark 14",
            TheoremId::Theorem20 => "Theorem 20",
            TheoremId::Theorem23 => "Theorem 23",
            TheoremId::Section6Full => "Section 6 (full multirouting)",
            TheoremId::Section6Concentrator => "Section 6 (concentrator multirouting)",
            TheoremId::Section6Augment => "Section 6 (augmentation)",
            TheoremId::FaultDiameter => "hypercube fault diameter",
        };
        f.write_str(text)
    }
}

/// One theorem's bound, machine-encoded: the scheme that provides it,
/// the theorem backing it, the `(diameter, faults)` tolerance claim, and
/// the route-count/memory cost of achieving it.
///
/// From [`Scheme::applicability`] the cost fields are *estimates* (no
/// table has been built); on a [`BuiltRouting`] they are exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Guarantee {
    /// Name of the scheme providing the bound.
    pub scheme: &'static str,
    /// The paper result backing the bound.
    pub theorem: TheoremId,
    /// Surviving-diameter bound `d`.
    pub diameter: u32,
    /// Tolerated fault count `f` (the requested budget, clamped to what
    /// the theorem covers).
    pub faults: usize,
    /// Ordered-pair route count (estimate before build, exact after).
    pub routes: usize,
    /// Route-table heap footprint in bytes (estimate before build,
    /// exact after).
    pub memory_bytes: usize,
    /// Whether the bound has been machine-audited — certified by the
    /// `ftr-audit` branch-and-bound search over every fault set within
    /// budget — rather than merely advertised by the theorem. Always
    /// `false` on pre-build estimates; upgraded through
    /// [`BuiltRouting::upgrade_audited`].
    pub audited: bool,
}

impl Guarantee {
    fn new(scheme: &'static str, theorem: TheoremId, diameter: u32, faults: usize) -> Self {
        Guarantee {
            scheme,
            theorem,
            diameter,
            faults,
            routes: 0,
            memory_bytes: 0,
            audited: false,
        }
    }

    /// Attaches a coarse pre-build cost estimate (`routes` ordered
    /// pairs, ~16 bytes of frozen table per pair).
    fn estimate(mut self, routes: usize) -> Self {
        self.routes = routes;
        self.memory_bytes = routes.saturating_mul(16);
        self
    }

    /// The `(d, f)` claim, for [`ToleranceReport::satisfies`] /
    /// [`crate::check_claim`].
    pub fn claim(&self) -> ToleranceClaim {
        ToleranceClaim {
            diameter: self.diameter,
            faults: self.faults,
        }
    }
}

impl fmt::Display for Guarantee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: ({}, {})-tolerant per {}{}",
            self.scheme,
            self.diameter,
            self.faults,
            self.theorem,
            if self.audited { " [audited]" } else { "" }
        )
    }
}

impl From<&Guarantee> for ToleranceClaim {
    fn from(g: &Guarantee) -> Self {
        g.claim()
    }
}

// ----------------------------------------------------------------- params

/// Which multirouting variant a [`SchemeSpec`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MultiMode {
    /// Section 6 (1): `t + 1` parallel routes between every pair.
    Full,
    /// Section 6 (2): kernel routing plus `t + 1` parallel routes inside
    /// the concentrator (the default — bounded and far cheaper).
    #[default]
    Concentrator,
}

/// Parameters a [`Scheme`] may consume; every field is optional and each
/// scheme reads only the ones it understands. [`Default`] gives every
/// scheme its theorem-default configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SchemeParams {
    /// Fault budget the guarantee should cover; defaults to the full
    /// tolerance `t = κ(G) − 1` of the construction. The kernel scheme
    /// uses it to choose between Theorem 3 and Theorem 4.
    pub faults: Option<usize>,
    /// Routing kind for the bipolar and hypercube schemes
    /// (defaults: bipolar unidirectional, hypercube bidirectional).
    pub kind: Option<RoutingKind>,
    /// Concentrator size override for the circular scheme
    /// (`CircularRouting::build_with_size`).
    pub concentrator_size: Option<usize>,
    /// Tri-circular variant (default [`TriCircularVariant::Standard`]).
    pub variant: Option<TriCircularVariant>,
    /// Multirouting mode (default [`MultiMode::Concentrator`]).
    pub multi_mode: Option<MultiMode>,
    /// Caller-chosen two-trees roots for the bipolar scheme
    /// (`BipolarRouting::build_with_roots`).
    pub roots: Option<(Node, Node)>,
    /// Caller-supplied separating set for the kernel scheme
    /// (`KernelRouting::build_with_separator`). Not expressible in the
    /// textual spec grammar — programmatic use only.
    pub separator: Option<NodeSet>,
}

// ------------------------------------------------------------------- spec

/// A parseable scheme name plus parameters — the shared textual form
/// used by `ftr-served --scheme`, the load generator and the experiment
/// binaries.
///
/// Grammar: `name[:opt[,opt…]]` where `opt` is one of `uni` | `bi`
/// (routing kind), `standard` | `small` (tri-circular variant), `full` |
/// `concentrator` (multirouting mode), `k=N` (circular concentrator
/// size), `f=N` (fault budget), `roots=A-B` (bipolar roots).
///
/// # Example
///
/// ```
/// use ftr_core::SchemeSpec;
///
/// let spec: SchemeSpec = "circular:k=6".parse()?;
/// assert_eq!(spec.name, "circular");
/// assert_eq!(spec.params.concentrator_size, Some(6));
/// assert_eq!(spec.to_string(), "circular:k=6");
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeSpec {
    /// Registry name of the scheme (`kernel`, `circular`, …).
    pub name: String,
    /// The parsed parameters.
    pub params: SchemeParams,
}

impl SchemeSpec {
    /// A spec with default parameters for `name`.
    pub fn named(name: impl Into<String>) -> Self {
        SchemeSpec {
            name: name.into(),
            params: SchemeParams::default(),
        }
    }
}

/// The names [`SchemeSpec`] accepts — exactly the
/// [`SchemeRegistry::standard`] contents.
pub const SCHEME_NAMES: [&str; 7] = [
    "kernel",
    "circular",
    "tricircular",
    "bipolar",
    "hypercube",
    "multi",
    "augment",
];

impl FromStr for SchemeSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let (name, opts) = s.split_once(':').unwrap_or((s, ""));
        if !SCHEME_NAMES.contains(&name) {
            return Err(format!(
                "unknown scheme {name:?} (one of {})",
                SCHEME_NAMES.join(" | ")
            ));
        }
        let mut params = SchemeParams::default();
        for opt in opts.split(',').filter(|o| !o.is_empty()) {
            match opt {
                "uni" => params.kind = Some(RoutingKind::Unidirectional),
                "bi" => params.kind = Some(RoutingKind::Bidirectional),
                "standard" => params.variant = Some(TriCircularVariant::Standard),
                "small" => params.variant = Some(TriCircularVariant::Small),
                "full" => params.multi_mode = Some(MultiMode::Full),
                "concentrator" => params.multi_mode = Some(MultiMode::Concentrator),
                _ => match opt.split_once('=') {
                    Some(("k", v)) => {
                        params.concentrator_size =
                            Some(v.parse().map_err(|_| format!("bad k value {v:?}"))?);
                    }
                    Some(("f", v)) => {
                        params.faults = Some(v.parse().map_err(|_| format!("bad f value {v:?}"))?);
                    }
                    Some(("roots", v)) => {
                        let (a, b) = v
                            .split_once('-')
                            .ok_or_else(|| format!("roots want A-B, got {v:?}"))?;
                        params.roots = Some((
                            a.parse().map_err(|_| format!("bad root {a:?}"))?,
                            b.parse().map_err(|_| format!("bad root {b:?}"))?,
                        ));
                    }
                    _ => {
                        return Err(format!(
                            "unknown scheme option {opt:?} \
                             (uni | bi | standard | small | full | concentrator | k=N | f=N | roots=A-B)"
                        ))
                    }
                },
            }
        }
        Ok(SchemeSpec {
            name: name.to_string(),
            params,
        })
    }
}

impl fmt::Display for SchemeSpec {
    /// The canonical textual form: options in a fixed order, defaults
    /// omitted, so parse → render round-trips and equal specs render
    /// identically. The programmatic-only `separator` field is not
    /// rendered.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        let mut opts: Vec<String> = Vec::new();
        if let Some(v) = self.params.variant {
            opts.push(
                match v {
                    TriCircularVariant::Standard => "standard",
                    TriCircularVariant::Small => "small",
                }
                .to_string(),
            );
        }
        if let Some(m) = self.params.multi_mode {
            opts.push(
                match m {
                    MultiMode::Full => "full",
                    MultiMode::Concentrator => "concentrator",
                }
                .to_string(),
            );
        }
        if let Some(k) = self.params.kind {
            opts.push(
                match k {
                    RoutingKind::Unidirectional => "uni",
                    RoutingKind::Bidirectional => "bi",
                }
                .to_string(),
            );
        }
        if let Some(k) = self.params.concentrator_size {
            opts.push(format!("k={k}"));
        }
        if let Some(fs) = self.params.faults {
            opts.push(format!("f={fs}"));
        }
        if let Some((a, b)) = self.params.roots {
            opts.push(format!("roots={a}-{b}"));
        }
        if !opts.is_empty() {
            write!(f, ":{}", opts.join(","))?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------- built routing

/// The table a scheme produced: a single-route-per-pair [`Routing`] or a
/// [`MultiRouting`] with parallel routes.
#[derive(Debug, Clone)]
pub enum BuiltTable {
    /// At most one route per ordered pair (the paper's base model).
    Single(Routing),
    /// Several parallel routes per pair (Section 6).
    Multi(MultiRouting),
}

impl BuiltTable {
    /// Ordered-pair route count (slots, for a multirouting).
    pub fn route_count(&self) -> usize {
        match self {
            BuiltTable::Single(r) => r.route_count(),
            BuiltTable::Multi(m) => m.route_count(),
        }
    }

    /// Approximate heap footprint of the table in bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            BuiltTable::Single(r) => r.memory_bytes(),
            BuiltTable::Multi(m) => m.memory_bytes(),
        }
    }
}

/// A routing built through the scheme API: the table, the network it
/// routes (which the augmentation scheme *changes*), the guarantee its
/// theorem proves, and scheme metadata.
#[derive(Debug, Clone)]
pub struct BuiltRouting {
    scheme: &'static str,
    spec: SchemeSpec,
    guarantee: Guarantee,
    graph: Graph,
    table: BuiltTable,
    core_nodes: Vec<Node>,
}

impl BuiltRouting {
    fn new(
        spec: SchemeSpec,
        mut guarantee: Guarantee,
        graph: Graph,
        table: BuiltTable,
        core_nodes: Vec<Node>,
    ) -> Self {
        guarantee.routes = table.route_count();
        guarantee.memory_bytes = table.memory_bytes();
        BuiltRouting {
            scheme: guarantee.scheme,
            spec,
            guarantee,
            graph,
            table,
            core_nodes,
        }
    }

    /// Name of the scheme that built this routing.
    pub fn scheme(&self) -> &'static str {
        self.scheme
    }

    /// The canonical spec that reproduces this build.
    pub fn spec(&self) -> &SchemeSpec {
        &self.spec
    }

    /// The guarantee the construction's theorem proves, with exact
    /// route-count/memory cost.
    pub fn guarantee(&self) -> &Guarantee {
        &self.guarantee
    }

    /// The network the table routes. For the augmentation scheme this is
    /// the *augmented* graph (original plus clique links); for every
    /// other scheme it equals the input graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The built table.
    pub fn table(&self) -> &BuiltTable {
        &self.table
    }

    /// The single-route table, if this scheme produces one (everything
    /// except the multiroutings).
    pub fn routing(&self) -> Option<&Routing> {
        match &self.table {
            BuiltTable::Single(r) => Some(r),
            BuiltTable::Multi(_) => None,
        }
    }

    /// The concentrator / separator / pole members the construction is
    /// organized around (empty when there is none, e.g. hypercube
    /// bit-fixing) — the natural victim pool for targeted fault
    /// injection.
    pub fn core_nodes(&self) -> &[Node] {
        &self.core_nodes
    }

    /// Marks the guarantee as machine-audited: the `ftr-audit` searcher
    /// has certified the bound over *every* fault set within the budget,
    /// upgrading it from the theorem's advertised word to a checked
    /// fact. Callers (the audit crate's `plan_audited`, the `ftr-audit`
    /// CLI) invoke this only after a holds verdict.
    pub fn upgrade_audited(&mut self) {
        self.guarantee.audited = true;
    }

    /// Decomposes into the served pieces: the (possibly augmented)
    /// graph and the single-route table.
    ///
    /// # Errors
    ///
    /// Returns `self` unchanged if the table is a multirouting.
    pub fn into_single(self) -> Result<(Graph, Routing, SchemeSpec, Guarantee), Box<BuiltRouting>> {
        match self.table {
            BuiltTable::Single(r) => Ok((self.graph, r, self.spec, self.guarantee)),
            BuiltTable::Multi(_) => Err(Box::new(self)),
        }
    }

    /// Measures the guarantee: compiles the table into the bitset engine
    /// and runs [`verify_tolerance`] at the guarantee's fault budget.
    pub fn verify(&self, strategy: FaultStrategy, threads: usize) -> ToleranceReport {
        let f = self.guarantee.faults;
        match &self.table {
            BuiltTable::Single(r) => verify_tolerance(&r.compile(), f, strategy, threads),
            BuiltTable::Multi(m) => verify_tolerance(&m.compile(), f, strategy, threads),
        }
    }
}

// ------------------------------------------------------------ the schemes

/// One construction of the paper behind the uniform interface:
/// applicability (with the guarantee it would provide) and building.
///
/// Implementations must be cheap-ish in [`Scheme::applicability`] —
/// graph analysis is fine, constructing route tables is not — and
/// deterministic in both methods.
pub trait Scheme: Send + Sync {
    /// Registry name (`kernel`, `circular`, …).
    fn name(&self) -> &'static str;

    /// Whether [`Scheme::build`] produces a single-route-per-pair
    /// [`Routing`] (everything except the multiroutings) — the planner's
    /// filter for requests that must be servable as snapshots.
    fn single_route_table(&self) -> bool {
        true
    }

    /// Can this construction run on `g` with `params`, and what bound
    /// would it promise? Costs in the returned [`Guarantee`] are
    /// estimates.
    ///
    /// # Errors
    ///
    /// [`Inapplicable`] with this scheme's name and the structural
    /// reason.
    fn applicability(&self, g: &Graph, params: &SchemeParams) -> Result<Guarantee, Inapplicable>;

    /// Builds the routing, bundling table + guarantee + metadata.
    ///
    /// # Errors
    ///
    /// [`RoutingError::Inapplicable`] when the precondition fails, or
    /// the underlying construction failure.
    fn build(&self, g: &Graph, params: &SchemeParams) -> Result<BuiltRouting, RoutingError>;
}

/// Connectivity, tolerance and effective fault budget, shared by every
/// scheme's applicability check.
fn connectivity_budget(
    scheme: &'static str,
    g: &Graph,
    params: &SchemeParams,
) -> Result<(usize, usize, usize), Inapplicable> {
    let kappa = connectivity::vertex_connectivity(g);
    if kappa == 0 {
        return Err(Inapplicable {
            scheme,
            reason: InapplicableReason::InsufficientConnectivity {
                needed: 1,
                found: 0,
            },
        });
    }
    let t = kappa - 1;
    let budget = params.faults.unwrap_or(t);
    if budget > t {
        return Err(Inapplicable {
            scheme,
            reason: InapplicableReason::FaultBudgetExceeded {
                tolerates: t,
                requested: budget,
            },
        });
    }
    Ok((kappa, t, budget))
}

fn spec_of(name: &str, params: &SchemeParams) -> SchemeSpec {
    SchemeSpec {
        name: name.to_string(),
        params: params.clone(),
    }
}

/// The kernel routing (Section 3): Theorem 3's `(max{2t, 4}, t)` bound,
/// or Theorem 4's `(4, ⌊t/2⌋)` bound when the requested fault budget
/// stays within half the connectivity margin.
pub struct KernelScheme;

impl KernelScheme {
    fn guarantee_at(g: &Graph, t: usize, budget: usize) -> Guarantee {
        let complete = g.is_complete();
        let (theorem, diameter) = if budget <= t / 2 {
            (TheoremId::Theorem4, if complete { 1 } else { 4 })
        } else {
            (
                TheoremId::Theorem3,
                if complete { 1 } else { (2 * t as u32).max(4) },
            )
        };
        let n = g.node_count();
        let routes = if complete {
            n * n.saturating_sub(1)
        } else {
            2 * g.edge_count() + 2 * (t + 1) * n.saturating_sub(t + 1)
        };
        Guarantee::new("kernel", theorem, diameter, budget).estimate(routes)
    }
}

impl Scheme for KernelScheme {
    fn name(&self) -> &'static str {
        "kernel"
    }

    fn applicability(&self, g: &Graph, params: &SchemeParams) -> Result<Guarantee, Inapplicable> {
        let (kappa, t, budget) = connectivity_budget("kernel", g, params)?;
        if let Some(sep) = &params.separator {
            if sep.len() < kappa {
                return Err(Inapplicable {
                    scheme: "kernel",
                    reason: InapplicableReason::ConcentratorTooSmall {
                        needed: kappa,
                        found: sep.len(),
                    },
                });
            }
            if !connectivity::is_separator(g, sep) {
                return Err(Inapplicable::property(
                    "kernel",
                    "the supplied node set does not separate the graph",
                ));
            }
        }
        Ok(Self::guarantee_at(g, t, budget))
    }

    fn build(&self, g: &Graph, params: &SchemeParams) -> Result<BuiltRouting, RoutingError> {
        let guarantee = self.applicability(g, params)?;
        let kernel = match &params.separator {
            Some(sep) => {
                KernelRouting::build_with_separator(g, sep, connectivity::vertex_connectivity(g))?
            }
            None => KernelRouting::build(g)?,
        };
        let core = kernel.separator().to_vec();
        Ok(BuiltRouting::new(
            spec_of("kernel", params),
            guarantee,
            g.clone(),
            BuiltTable::Single(kernel.into_routing()),
            core,
        ))
    }
}

/// The circular routing (Theorem 10): `(6, t)` given a neighborhood set
/// of `t+1` / `t+2` members (or a caller-chosen size, Lemma 7 / A1).
pub struct CircularScheme;

impl CircularScheme {
    fn required_size(t: usize, params: &SchemeParams) -> usize {
        params
            .concentrator_size
            .unwrap_or(if t.is_multiple_of(2) { t + 1 } else { t + 2 })
    }
}

impl Scheme for CircularScheme {
    fn name(&self) -> &'static str {
        "circular"
    }

    fn applicability(&self, g: &Graph, params: &SchemeParams) -> Result<Guarantee, Inapplicable> {
        let (kappa, t, budget) = connectivity_budget("circular", g, params)?;
        let k = Self::required_size(t, params);
        // Theorem 10 needs at least `f + 1` concentrator members to
        // cover a budget of `f` faults; undersized overrides are the A1
        // ablation regime (`CircularRouting::build_with_size` directly),
        // where the bound is deliberately *not* certified — the scheme
        // API must not promise it.
        if k <= budget {
            return Err(Inapplicable {
                scheme: "circular",
                reason: InapplicableReason::ConcentratorTooSmall {
                    needed: budget + 1,
                    found: k,
                },
            });
        }
        NeighborhoodConcentrator::select(g, k)
            .map_err(|e| Inapplicable::from_build_error("circular", e).expect("precondition"))?;
        let n = g.node_count();
        let routes = 2 * g.edge_count() + 2 * kappa * k * n;
        Ok(Guarantee::new("circular", TheoremId::Theorem10, 6, budget).estimate(routes))
    }

    fn build(&self, g: &Graph, params: &SchemeParams) -> Result<BuiltRouting, RoutingError> {
        let guarantee = self.applicability(g, params)?;
        let size = match params.concentrator_size {
            Some(k) => k,
            None => Self::required_size(connectivity::vertex_connectivity(g) - 1, params),
        };
        let circ = CircularRouting::build_with_size(g, size)?;
        let core = circ.concentrator().members().to_vec();
        Ok(BuiltRouting::new(
            spec_of("circular", params),
            guarantee,
            g.clone(),
            BuiltTable::Single(circ.into_routing()),
            core,
        ))
    }
}

/// The tri-circular routing (Theorem 13 / Remark 14): `(4, t)` with
/// `6t + 9` concentrator members, or `(5, t)` with `3t+3` / `3t+6` for
/// the small variant.
pub struct TriCircularScheme;

impl TriCircularScheme {
    fn variant(params: &SchemeParams) -> TriCircularVariant {
        params.variant.unwrap_or(TriCircularVariant::Standard)
    }

    fn circle_size(t: usize, variant: TriCircularVariant) -> usize {
        match variant {
            TriCircularVariant::Standard => 2 * t + 3,
            TriCircularVariant::Small => {
                if t.is_multiple_of(2) {
                    t + 1
                } else {
                    t + 2
                }
            }
        }
    }
}

impl Scheme for TriCircularScheme {
    fn name(&self) -> &'static str {
        "tricircular"
    }

    fn applicability(&self, g: &Graph, params: &SchemeParams) -> Result<Guarantee, Inapplicable> {
        let (kappa, t, budget) = connectivity_budget("tricircular", g, params)?;
        let variant = Self::variant(params);
        let k = 3 * Self::circle_size(t, variant);
        NeighborhoodConcentrator::select(g, k)
            .map_err(|e| Inapplicable::from_build_error("tricircular", e).expect("precondition"))?;
        let (theorem, diameter) = match variant {
            TriCircularVariant::Standard => (TheoremId::Theorem13, 4),
            TriCircularVariant::Small => (TheoremId::Remark14, 5),
        };
        let routes = 2 * g.edge_count() + 2 * kappa * k * g.node_count();
        Ok(Guarantee::new("tricircular", theorem, diameter, budget).estimate(routes))
    }

    fn build(&self, g: &Graph, params: &SchemeParams) -> Result<BuiltRouting, RoutingError> {
        let guarantee = self.applicability(g, params)?;
        let tri = TriCircularRouting::build(g, Self::variant(params))?;
        let core = tri.concentrator().members().to_vec();
        Ok(BuiltRouting::new(
            spec_of("tricircular", params),
            guarantee,
            g.clone(),
            BuiltTable::Single(tri.into_routing()),
            core,
        ))
    }
}

/// The bipolar routings (Theorems 20 and 23): `(4, t)` unidirectional /
/// `(5, t)` bidirectional on two-trees graphs.
pub struct BipolarScheme;

impl BipolarScheme {
    fn kind(params: &SchemeParams) -> RoutingKind {
        params.kind.unwrap_or(RoutingKind::Unidirectional)
    }
}

impl Scheme for BipolarScheme {
    fn name(&self) -> &'static str {
        "bipolar"
    }

    fn applicability(&self, g: &Graph, params: &SchemeParams) -> Result<Guarantee, Inapplicable> {
        let (kappa, _, budget) = connectivity_budget("bipolar", g, params)?;
        match params.roots {
            Some((r1, r2)) => {
                if !analysis::is_two_trees_pair(g, r1, r2) {
                    return Err(Inapplicable::property(
                        "bipolar",
                        format!("nodes {r1} and {r2} are not two-trees roots"),
                    ));
                }
            }
            None => {
                if analysis::find_two_trees_roots(g).is_none() {
                    return Err(Inapplicable::property(
                        "bipolar",
                        "the graph does not satisfy the two-trees property",
                    ));
                }
            }
        }
        let (theorem, diameter) = match Self::kind(params) {
            RoutingKind::Unidirectional => (TheoremId::Theorem20, 4),
            RoutingKind::Bidirectional => (TheoremId::Theorem23, 5),
        };
        let n = g.node_count();
        let routes = 2 * g.edge_count() + 4 * kappa * n;
        Ok(Guarantee::new("bipolar", theorem, diameter, budget).estimate(routes))
    }

    fn build(&self, g: &Graph, params: &SchemeParams) -> Result<BuiltRouting, RoutingError> {
        let guarantee = self.applicability(g, params)?;
        let kind = Self::kind(params);
        let bipolar = match params.roots {
            Some((r1, r2)) => BipolarRouting::build_with_roots(g, r1, r2, kind)?,
            None => BipolarRouting::build(g, kind)?,
        };
        let (r1, r2) = bipolar.roots();
        let mut core = vec![r1, r2];
        core.extend_from_slice(bipolar.m1());
        core.extend_from_slice(bipolar.m2());
        Ok(BuiltRouting::new(
            spec_of("bipolar", params),
            guarantee,
            g.clone(),
            BuiltTable::Single(bipolar.into_routing()),
            core,
        ))
    }
}

/// The hypercube bit-fixing baseline (Section 1, after Dolev et al.):
/// applicable only when the graph *is* a labeled hypercube `Q_d`. Every
/// edge of `Q_d` is a bit-fixing route, so the surviving route graph
/// contains the faulted hypercube, whose diameter under at most `d − 1`
/// node faults is at most `d + 1` (the hypercube fault-diameter bound) —
/// that, not the stronger bound Dolev et al. quote for their unpublished
/// construction, is what this scheme promises.
pub struct HypercubeScheme;

/// The dimension of `g` if it is exactly the labeled hypercube `Q_d`
/// (node `x` adjacent to `x ^ (1 << i)` for every bit `i`).
fn hypercube_dim(g: &Graph) -> Option<usize> {
    let n = g.node_count();
    if n < 2 || !n.is_power_of_two() {
        return None;
    }
    let d = n.trailing_zeros() as usize;
    for x in g.nodes() {
        if g.degree(x) != d {
            return None;
        }
        for bit in 0..d {
            if !g.has_edge(x, x ^ (1u32 << bit)) {
                return None;
            }
        }
    }
    Some(d)
}

impl Scheme for HypercubeScheme {
    fn name(&self) -> &'static str {
        "hypercube"
    }

    fn applicability(&self, g: &Graph, params: &SchemeParams) -> Result<Guarantee, Inapplicable> {
        let Some(d) = hypercube_dim(g) else {
            return Err(Inapplicable::property(
                "hypercube",
                "the graph is not a labeled hypercube",
            ));
        };
        let t = d - 1;
        let budget = params.faults.unwrap_or(t);
        if budget > t {
            return Err(Inapplicable {
                scheme: "hypercube",
                reason: InapplicableReason::FaultBudgetExceeded {
                    tolerates: t,
                    requested: budget,
                },
            });
        }
        let n = g.node_count();
        let routes = n * (n - 1);
        Ok(
            Guarantee::new("hypercube", TheoremId::FaultDiameter, d as u32 + 1, budget)
                .estimate(routes),
        )
    }

    fn build(&self, g: &Graph, params: &SchemeParams) -> Result<BuiltRouting, RoutingError> {
        let guarantee = self.applicability(g, params)?;
        let d = hypercube_dim(g).expect("applicability checked the topology");
        let kind = params.kind.unwrap_or(RoutingKind::Bidirectional);
        let hc = HypercubeRouting::build(d, kind)?;
        Ok(BuiltRouting::new(
            spec_of("hypercube", params),
            guarantee,
            g.clone(),
            BuiltTable::Single(hc.into_routing()),
            Vec::new(),
        ))
    }
}

/// The Section 6 multiroutings: `t + 1` parallel routes everywhere
/// (surviving diameter 1) or only inside the concentrator (diameter 3).
/// The unbounded two-route single-tree variant stays outside the scheme
/// API — the paper proves nothing for it, so the planner could not rank
/// it honestly; [`crate::single_tree_multirouting`] remains callable
/// directly and experiment E11 measures it.
pub struct MultiScheme;

impl MultiScheme {
    fn mode(params: &SchemeParams) -> MultiMode {
        params.multi_mode.unwrap_or_default()
    }
}

impl Scheme for MultiScheme {
    fn name(&self) -> &'static str {
        "multi"
    }

    fn single_route_table(&self) -> bool {
        false
    }

    fn applicability(&self, g: &Graph, params: &SchemeParams) -> Result<Guarantee, Inapplicable> {
        let (kappa, _, budget) = connectivity_budget("multi", g, params)?;
        let n = g.node_count();
        match Self::mode(params) {
            MultiMode::Full => {
                let routes = n * n.saturating_sub(1) * kappa;
                Ok(Guarantee::new("multi", TheoremId::Section6Full, 1, budget).estimate(routes))
            }
            MultiMode::Concentrator => {
                if g.is_complete() {
                    return Err(Inapplicable::property(
                        "multi",
                        "complete graphs have no separating set",
                    ));
                }
                let routes = 2 * g.edge_count() + 2 * kappa * n + kappa * kappa * kappa;
                Ok(
                    Guarantee::new("multi", TheoremId::Section6Concentrator, 3, budget)
                        .estimate(routes),
                )
            }
        }
    }

    fn build(&self, g: &Graph, params: &SchemeParams) -> Result<BuiltRouting, RoutingError> {
        let guarantee = self.applicability(g, params)?;
        let (multi, core) = match Self::mode(params) {
            MultiMode::Full => (full_multirouting(g)?, Vec::new()),
            MultiMode::Concentrator => concentrator_multirouting(g)?,
        };
        Ok(BuiltRouting::new(
            spec_of("multi", params),
            guarantee,
            g.clone(),
            BuiltTable::Multi(multi),
            core,
        ))
    }
}

/// The Section 6 augmentation: clique the kernel separator for a
/// `(3, t)` bound at the price of at most `t(t+1)/2` added links. The
/// built routing runs over the *augmented* network
/// ([`BuiltRouting::graph`] returns it).
pub struct AugmentScheme;

impl Scheme for AugmentScheme {
    fn name(&self) -> &'static str {
        "augment"
    }

    fn applicability(&self, g: &Graph, params: &SchemeParams) -> Result<Guarantee, Inapplicable> {
        let (kappa, t, budget) = connectivity_budget("augment", g, params)?;
        if g.is_complete() {
            return Err(Inapplicable::property(
                "augment",
                "complete graphs need no augmentation",
            ));
        }
        let n = g.node_count();
        let routes = 2 * (g.edge_count() + t * (t + 1) / 2) + 2 * kappa * n;
        Ok(Guarantee::new("augment", TheoremId::Section6Augment, 3, budget).estimate(routes))
    }

    fn build(&self, g: &Graph, params: &SchemeParams) -> Result<BuiltRouting, RoutingError> {
        let guarantee = self.applicability(g, params)?;
        let aug = AugmentedKernelRouting::build(g)?;
        let core = aug.separator().to_vec();
        let (augmented, routing) = aug.into_parts();
        Ok(BuiltRouting::new(
            spec_of("augment", params),
            guarantee,
            augmented,
            BuiltTable::Single(routing),
            core,
        ))
    }
}

// --------------------------------------------------------------- registry

/// Every construction of the paper behind the [`Scheme`] interface, in a
/// fixed, deterministic order (the planner's tie-break order).
pub struct SchemeRegistry {
    schemes: Vec<Box<dyn Scheme>>,
}

impl SchemeRegistry {
    /// The standard registry: kernel, circular, tricircular, bipolar,
    /// hypercube, multi, augment.
    pub fn standard() -> Self {
        SchemeRegistry {
            schemes: vec![
                Box::new(KernelScheme),
                Box::new(CircularScheme),
                Box::new(TriCircularScheme),
                Box::new(BipolarScheme),
                Box::new(HypercubeScheme),
                Box::new(MultiScheme),
                Box::new(AugmentScheme),
            ],
        }
    }

    /// The schemes, in registry order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Scheme> {
        self.schemes.iter().map(|s| s.as_ref())
    }

    /// Number of registered schemes.
    pub fn len(&self) -> usize {
        self.schemes.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.schemes.is_empty()
    }

    /// Looks a scheme up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Scheme> {
        self.iter().find(|s| s.name() == name)
    }

    /// Builds the routing a [`SchemeSpec`] names.
    ///
    /// # Errors
    ///
    /// [`RoutingError::Inapplicable`] for unknown names (unreachable
    /// after `SchemeSpec::from_str`) or failed preconditions, or the
    /// construction's own failure.
    pub fn build_spec(&self, g: &Graph, spec: &SchemeSpec) -> Result<BuiltRouting, RoutingError> {
        let scheme = self.get(&spec.name).ok_or_else(|| {
            RoutingError::Inapplicable(Inapplicable::property(
                "registry",
                format!("unknown scheme {:?}", spec.name),
            ))
        })?;
        scheme.build(g, &spec.params)
    }
}

impl Default for SchemeRegistry {
    fn default() -> Self {
        SchemeRegistry::standard()
    }
}

impl fmt::Debug for SchemeRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchemeRegistry")
            .field(
                "schemes",
                &self.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_graph::gen;

    #[test]
    fn spec_parse_and_render_round_trip() {
        for (text, canonical) in [
            ("kernel", "kernel"),
            ("circular:k=6", "circular:k=6"),
            ("bipolar:bi", "bipolar:bi"),
            ("bipolar:uni,roots=0-3", "bipolar:uni,roots=0-3"),
            ("tricircular:small", "tricircular:small"),
            ("multi:full", "multi:full"),
            ("multi:concentrator,f=2", "multi:concentrator,f=2"),
            ("hypercube:bi", "hypercube:bi"),
            ("augment", "augment"),
            ("circular:f=1,k=3", "circular:k=3,f=1"), // canonical order
        ] {
            let spec: SchemeSpec = text.parse().expect(text);
            assert_eq!(spec.to_string(), canonical, "{text}");
            let back: SchemeSpec = spec.to_string().parse().expect("canonical re-parses");
            assert_eq!(back, spec, "{text}");
        }
    }

    #[test]
    fn spec_rejects_malformed() {
        for bad in [
            "",
            "klein",
            "kernel:q=1",
            "circular:k=x",
            "bipolar:roots=5",
            "multi:single",
            "kernel:f=",
        ] {
            assert!(bad.parse::<SchemeSpec>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn registry_names_match_spec_grammar() {
        let reg = SchemeRegistry::standard();
        assert_eq!(reg.len(), SCHEME_NAMES.len());
        for name in SCHEME_NAMES {
            assert!(reg.get(name).is_some(), "{name} missing from registry");
            assert!(name.parse::<SchemeSpec>().is_ok(), "{name} unparseable");
        }
    }

    #[test]
    fn kernel_guarantee_is_budget_aware() {
        let g = gen::torus(3, 4).unwrap(); // κ = 4, t = 3
        let reg = SchemeRegistry::standard();
        let kernel = reg.get("kernel").unwrap();
        let full = kernel.applicability(&g, &SchemeParams::default()).unwrap();
        assert_eq!(full.theorem, TheoremId::Theorem3);
        assert_eq!((full.diameter, full.faults), (6, 3));
        let half = kernel
            .applicability(
                &g,
                &SchemeParams {
                    faults: Some(1),
                    ..SchemeParams::default()
                },
            )
            .unwrap();
        assert_eq!(half.theorem, TheoremId::Theorem4);
        assert_eq!((half.diameter, half.faults), (4, 1));
        let over = kernel.applicability(
            &g,
            &SchemeParams {
                faults: Some(9),
                ..SchemeParams::default()
            },
        );
        assert!(matches!(
            over.unwrap_err().reason,
            InapplicableReason::FaultBudgetExceeded { tolerates: 3, .. }
        ));
    }

    #[test]
    fn build_attaches_exact_costs_and_core_nodes() {
        let g = gen::petersen();
        let built = SchemeRegistry::standard()
            .build_spec(&g, &SchemeSpec::named("kernel"))
            .unwrap();
        assert_eq!(built.scheme(), "kernel");
        assert_eq!(
            built.guarantee().routes,
            built.routing().unwrap().route_count()
        );
        assert!(built.guarantee().memory_bytes > 0);
        assert_eq!(built.core_nodes().len(), 3, "petersen kernel separator");
        let report = built.verify(FaultStrategy::Exhaustive, 2);
        assert!(report.satisfies(&built.guarantee().claim()), "{report}");
    }

    #[test]
    fn hypercube_scheme_detects_topology() {
        assert_eq!(hypercube_dim(&gen::hypercube(3).unwrap()), Some(3));
        assert_eq!(hypercube_dim(&gen::hypercube(1).unwrap()), Some(1));
        assert_eq!(hypercube_dim(&gen::cycle(8).unwrap()), None); // n = 2^3 but not Q3
        assert_eq!(hypercube_dim(&gen::petersen()), None);
        let g = gen::hypercube(3).unwrap();
        let built = SchemeRegistry::standard()
            .build_spec(&g, &SchemeSpec::named("hypercube"))
            .unwrap();
        assert_eq!(built.guarantee().theorem, TheoremId::FaultDiameter);
        assert_eq!(built.guarantee().diameter, 4); // d + 1
        let report = built.verify(FaultStrategy::Exhaustive, 2);
        assert!(report.satisfies(&built.guarantee().claim()), "{report}");
    }

    #[test]
    fn circular_rejects_undersized_concentrator_overrides() {
        // H(3, 18): t = 2, so Theorem 10 needs at least 3 concentrator
        // members. k = 1 and k = 2 are the (uncertified) A1 ablation
        // regime — the scheme API must refuse to promise the bound.
        let g = gen::harary(3, 18).unwrap();
        let reg = SchemeRegistry::standard();
        let circular = reg.get("circular").unwrap();
        for k in [0, 1, 2] {
            let err = circular
                .applicability(
                    &g,
                    &SchemeParams {
                        concentrator_size: Some(k),
                        ..SchemeParams::default()
                    },
                )
                .unwrap_err();
            assert!(
                matches!(
                    err.reason,
                    InapplicableReason::ConcentratorTooSmall { needed: 3, found } if found == k
                ),
                "k = {k}: {err}"
            );
        }
        // Overrides at or above the theorem size still apply (H(3, 18)
        // admits neighborhood sets of up to 4 members).
        for k in [3, 4] {
            let built = reg
                .build_spec(&g, &format!("circular:k={k}").parse().unwrap())
                .unwrap();
            assert_eq!(built.guarantee().theorem, TheoremId::Theorem10);
            assert_eq!(built.core_nodes().len(), k);
        }
    }

    #[test]
    fn inapplicable_schemes_say_why() {
        let reg = SchemeRegistry::standard();
        let g = gen::hypercube(3).unwrap(); // 4-cycles: no two-trees roots
        let err = reg
            .get("bipolar")
            .unwrap()
            .applicability(&g, &SchemeParams::default())
            .unwrap_err();
        assert_eq!(err.scheme, "bipolar");
        assert!(err.to_string().contains("two-trees"), "{err}");
        // Build reports the same taxonomy through RoutingError.
        let build_err = reg
            .build_spec(&g, &SchemeSpec::named("bipolar"))
            .unwrap_err();
        assert!(matches!(build_err, RoutingError::Inapplicable(_)));
    }

    #[test]
    fn augment_scheme_returns_the_augmented_network() {
        let g = gen::petersen();
        let built = SchemeRegistry::standard()
            .build_spec(&g, &SchemeSpec::named("augment"))
            .unwrap();
        assert!(built.graph().edge_count() >= g.edge_count());
        built
            .routing()
            .unwrap()
            .validate(built.graph())
            .expect("routes the augmented network");
        let report = built.verify(FaultStrategy::Exhaustive, 2);
        assert!(report.satisfies(&built.guarantee().claim()), "{report}");
    }

    #[test]
    fn multi_scheme_builds_both_modes() {
        let g = gen::petersen();
        let reg = SchemeRegistry::standard();
        for (mode, diameter) in [(MultiMode::Full, 1), (MultiMode::Concentrator, 3)] {
            let spec = SchemeSpec {
                name: "multi".into(),
                params: SchemeParams {
                    multi_mode: Some(mode),
                    ..SchemeParams::default()
                },
            };
            let built = reg.build_spec(&g, &spec).unwrap();
            assert_eq!(built.guarantee().diameter, diameter);
            assert!(built.routing().is_none(), "multiroutings are not single");
            let report = built.verify(FaultStrategy::Exhaustive, 2);
            assert!(report.satisfies(&built.guarantee().claim()), "{report}");
        }
    }

    #[test]
    fn theorem_tokens_round_trip() {
        for id in [
            TheoremId::Theorem3,
            TheoremId::Theorem4,
            TheoremId::Theorem10,
            TheoremId::Theorem13,
            TheoremId::Remark14,
            TheoremId::Theorem20,
            TheoremId::Theorem23,
            TheoremId::Section6Full,
            TheoremId::Section6Concentrator,
            TheoremId::Section6Augment,
            TheoremId::FaultDiameter,
        ] {
            assert_eq!(TheoremId::from_token(id.token()), Some(id));
        }
        assert_eq!(TheoremId::from_token("thm99"), None);
    }
}

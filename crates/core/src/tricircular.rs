//! The tri-circular routing (Section 4, Theorem 13): a bidirectional
//! `(4, t)`-tolerant routing for any `(t+1)`-connected graph with a
//! neighborhood set of size `K >= 6t + 9`.
//!
//! The concentrator is split into three circles `M^0, M^1, M^2` of `s`
//! members each. Components:
//!
//! * T-CIRC 1 — every `x ∉ Γ` gets tree routings into *every* set Γ^j_i;
//! * T-CIRC 2 — every `x ∈ Γ^j_i` gets tree routings into the next
//!   `t + 1` sets of its own circle, Γ^j_(i+k) for `1 <= k <= t+1`;
//! * T-CIRC 3 — every `x ∈ Γ^j_i` gets tree routings into *every* set of
//!   the next circle, Γ^(j+1 mod 3)_l;
//! * T-CIRC 4 — direct edge routes.
//!
//! Any two nodes then share `t + 1` common target sets, so some
//! *common* non-faulty member is 2 steps from both (Property T-CIRC),
//! giving diameter 4 (Lemma 11).
//!
//! Remark 14's *small* variant uses three circles of the circular
//! routing's size (`t+1` or `t+2`, so `K >= 3t+3` or `3t+6`) with the
//! circular forward-half rule inside each circle, and is claimed
//! `(5, t)`-tolerant; the paper omits the details, so this module builds
//! the natural construction and experiment E5 validates the bound
//! empirically.

use ftr_graph::{connectivity, Graph, Node};

use crate::concentrator::NeighborhoodConcentrator;
use crate::kernel::insert_edge_routes;
use crate::par;
use crate::tree::tree_routing;
use crate::{Guarantee, Routing, RoutingError, RoutingKind, TheoremId};

/// Which tri-circular construction to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriCircularVariant {
    /// Theorem 13: circles of `2t + 3` members (`K = 6t + 9`), in-circle
    /// forward range `t + 1`; bound 4.
    Standard,
    /// Remark 14: circles of `t+1` / `t+2` members (`K = 3t+3` /
    /// `3t+6`), in-circle forward range `⌈s/2⌉ − 1`; bound 5
    /// (validated empirically — the paper gives no construction).
    Small,
}

/// A tri-circular routing: three circles with cyclic cross-links.
///
/// # Example
///
/// ```
/// use ftr_core::{RouteTable, TriCircularRouting, TriCircularVariant};
/// use ftr_graph::{gen, NodeSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = gen::cycle(45)?; // 2-connected: t = 1, K = 6t + 9 = 15
/// let tri = TriCircularRouting::build(&g, TriCircularVariant::Standard)?;
/// assert_eq!(tri.circle_size(), 5); // 2t + 3
/// let s = tri.routing().surviving(&NodeSet::from_nodes(45, [4]));
/// assert!(s.diameter().expect("tolerates 1 fault") <= 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TriCircularRouting {
    routing: Routing,
    concentrator: NeighborhoodConcentrator,
    circle_size: usize,
    variant: TriCircularVariant,
    t: usize,
}

impl TriCircularRouting {
    /// Builds a tri-circular routing on `g`.
    ///
    /// # Errors
    ///
    /// * [`RoutingError::InsufficientConnectivity`] if `g` is
    ///   disconnected.
    /// * [`RoutingError::ConcentratorTooSmall`] if no neighborhood set
    ///   with `3 * circle_size` members exists.
    pub fn build(g: &Graph, variant: TriCircularVariant) -> Result<Self, RoutingError> {
        let kappa = connectivity::vertex_connectivity(g);
        if kappa == 0 {
            return Err(RoutingError::InsufficientConnectivity {
                needed: 1,
                found: 0,
            });
        }
        let t = kappa - 1;
        let s = match variant {
            TriCircularVariant::Standard => 2 * t + 3,
            TriCircularVariant::Small => {
                if t.is_multiple_of(2) {
                    t + 1
                } else {
                    t + 2
                }
            }
        };
        let concentrator = NeighborhoodConcentrator::select(g, 3 * s)?;
        let routing = construct(g, &concentrator, s, variant, kappa)?;
        Ok(TriCircularRouting {
            routing,
            concentrator,
            circle_size: s,
            variant,
            t,
        })
    }

    /// The underlying route table.
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// Consumes the construction, returning the owned route table.
    pub fn into_routing(self) -> Routing {
        self.routing
    }

    /// The concentrator; members `[j*s .. (j+1)*s]` form circle `j`.
    pub fn concentrator(&self) -> &NeighborhoodConcentrator {
        &self.concentrator
    }

    /// Members per circle (`2t+3` standard, `t+1`/`t+2` small).
    pub fn circle_size(&self) -> usize {
        self.circle_size
    }

    /// Which variant was built.
    pub fn variant(&self) -> TriCircularVariant {
        self.variant
    }

    /// The number of faults `t` the construction tolerates.
    pub fn tolerated_faults(&self) -> usize {
        self.t
    }

    /// Theorem 13's `(4, t)` guarantee, or Remark 14's `(5, t)` for the
    /// small variant, with this table's exact costs.
    pub fn guarantee(&self) -> Guarantee {
        let (theorem, diameter) = match self.variant {
            TriCircularVariant::Standard => (TheoremId::Theorem13, 4),
            TriCircularVariant::Small => (TheoremId::Remark14, 5),
        };
        Guarantee {
            scheme: "tricircular",
            theorem,
            diameter,
            faults: self.t,
            routes: self.routing.route_count(),
            memory_bytes: self.routing.memory_bytes(),
            audited: false,
        }
    }
}

/// Assembles components T-CIRC 1–4 over the first `3s` concentrator
/// members.
fn construct(
    g: &Graph,
    conc: &NeighborhoodConcentrator,
    s: usize,
    variant: TriCircularVariant,
    kappa: usize,
) -> Result<Routing, RoutingError> {
    let t = kappa - 1;
    debug_assert!(conc.len() == 3 * s);
    // In-circle forward range: T-CIRC 2's `t + 1` for the standard
    // variant needs `s >= 2t + 3` so that forward arcs never meet their
    // own reverses; the small variant reuses the circular routing's
    // conflict-free `⌈s/2⌉ − 1`.
    let forward = match variant {
        TriCircularVariant::Standard => t + 1,
        TriCircularVariant::Small => s.div_ceil(2) - 1,
    };
    let mut routing = Routing::new(g.node_count(), RoutingKind::Bidirectional);
    insert_edge_routes(&mut routing, g)?; // T-CIRC 4
    let set_of = |j: usize, i: usize| conc.gamma(j * s + i);
    // T-CIRC 1–3 derive every source's tree routings in parallel;
    // insertion is sequential in source order.
    let nodes: Vec<Node> = g.nodes().collect();
    let batches = par::ordered_map(nodes.len(), par::default_threads(), |idx| {
        let x = nodes[idx];
        let mut paths = Vec::new();
        match conc.circle_of(x) {
            // T-CIRC 1: x outside Γ routes into every set of every circle.
            None => {
                for i in 0..3 * s {
                    paths.extend(tree_routing(g, x, conc.gamma(i), kappa)?);
                }
            }
            Some(global) => {
                let (j, i) = (global / s, global % s);
                // T-CIRC 2: forward within the own circle.
                for k in 1..=forward {
                    paths.extend(tree_routing(g, x, set_of(j, (i + k) % s), kappa)?);
                }
                // T-CIRC 3: every set of the next circle.
                for l in 0..s {
                    paths.extend(tree_routing(g, x, set_of((j + 1) % 3, l), kappa)?);
                }
            }
        }
        Ok::<_, RoutingError>(paths)
    });
    for batch in batches {
        for p in batch? {
            routing.insert(p)?;
        }
    }
    routing.freeze();
    Ok(routing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify_tolerance, FaultStrategy, RouteTable};
    use ftr_graph::{gen, NodeSet};

    #[test]
    fn standard_builds_with_theorem_sizes() {
        let g = gen::cycle(45).unwrap(); // t = 1
        let tri = TriCircularRouting::build(&g, TriCircularVariant::Standard).unwrap();
        tri.routing().validate(&g).unwrap();
        assert_eq!(tri.circle_size(), 5);
        assert_eq!(tri.concentrator().len(), 15);
        assert_eq!(tri.guarantee().claim().diameter, 4);
    }

    #[test]
    fn small_variant_sizes_follow_parity() {
        let g = gen::cycle(27).unwrap(); // t = 1 odd -> s = 3, K = 9
        let tri = TriCircularRouting::build(&g, TriCircularVariant::Small).unwrap();
        assert_eq!(tri.circle_size(), 3);
        assert_eq!(tri.concentrator().len(), 9);
        assert_eq!(tri.guarantee().claim().diameter, 5);
    }

    #[test]
    fn theorem_13_bound_exhaustive_on_cycle() {
        let g = gen::cycle(45).unwrap(); // t = 1
        let tri = TriCircularRouting::build(&g, TriCircularVariant::Standard).unwrap();
        let report = verify_tolerance(tri.routing(), 1, FaultStrategy::Exhaustive, 4);
        assert!(report.satisfies(&tri.guarantee().claim()), "{report}");
    }

    #[test]
    fn remark_14_bound_exhaustive_on_cycle() {
        let g = gen::cycle(27).unwrap(); // t = 1
        let tri = TriCircularRouting::build(&g, TriCircularVariant::Small).unwrap();
        let report = verify_tolerance(tri.routing(), 1, FaultStrategy::Exhaustive, 4);
        assert!(report.satisfies(&tri.guarantee().claim()), "{report}");
    }

    #[test]
    fn no_fault_diameter_bounded_by_claim() {
        let g = gen::cycle(45).unwrap();
        let tri = TriCircularRouting::build(&g, TriCircularVariant::Standard).unwrap();
        let s = tri.routing().surviving(&NodeSet::new(45));
        assert!(s.diameter().unwrap() <= 4);
    }

    #[test]
    fn too_small_graph_rejected() {
        // K = 15 members pairwise at distance >= 3 cannot fit in C20.
        let g = gen::cycle(20).unwrap();
        assert!(matches!(
            TriCircularRouting::build(&g, TriCircularVariant::Standard),
            Err(RoutingError::ConcentratorTooSmall { .. })
        ));
    }
}

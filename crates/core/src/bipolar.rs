//! The bipolar constructions (Section 5): routings concentrated around
//! two roots whose depth-2 neighborhoods form disjoint trees.
//!
//! For a graph with the *two-trees property* — roots `r1, r2` with
//! `M1 = Γ(r1)`, `M2 = Γ(r2)` and all the sets `M1`, `M2`,
//! `Γ(x) − {r1}` (x ∈ M1), `Γ(y) − {r2}` (y ∈ M2) disjoint — the paper
//! builds:
//!
//! * a **unidirectional** bipolar routing (components B-POL 1–6) that is
//!   `(4, t)`-tolerant (Theorem 20), and
//! * a **bidirectional** bipolar routing (components 2B-POL 1–5) that is
//!   `(5, t)`-tolerant (Theorem 23).
//!
//! The concentrator `M = M1 ∪ M2` is a union of two separating sets
//! (each Γ(r) separates its root); tree routings give every node a
//! 1-step surviving link into `M`, M1 and M2 are internally within 2
//! steps (Lemma 5 via the Γ¹_j / Γ²_j sets), and the asymmetric
//! M1-to-M2 links bound the diameter.

use ftr_graph::{analysis, connectivity, Graph, Node, NodeSet, Path};

use crate::kernel::insert_edge_routes;
use crate::par;
use crate::tree::tree_routing;
use crate::{Guarantee, Routing, RoutingError, RoutingKind, TheoremId};

/// A bipolar routing with its roots and polar sets.
///
/// # Example
///
/// ```
/// use ftr_core::{BipolarRouting, RouteTable, RoutingKind};
/// use ftr_graph::{gen, NodeSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = gen::cycle(12)?; // 2-connected, two-trees property holds
/// let uni = BipolarRouting::build(&g, RoutingKind::Unidirectional)?;
/// let s = uni.routing().surviving(&NodeSet::from_nodes(12, [3]));
/// assert!(s.diameter().expect("tolerates 1 fault") <= 4); // Theorem 20
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BipolarRouting {
    routing: Routing,
    r1: Node,
    r2: Node,
    m1: Vec<Node>,
    m2: Vec<Node>,
    t: usize,
}

impl BipolarRouting {
    /// Builds a bipolar routing, searching the graph for two-trees
    /// roots.
    ///
    /// # Errors
    ///
    /// * [`RoutingError::InsufficientConnectivity`] if `g` is
    ///   disconnected.
    /// * [`RoutingError::PropertyNotSatisfied`] if no two-trees roots
    ///   exist.
    pub fn build(g: &Graph, kind: RoutingKind) -> Result<Self, RoutingError> {
        let (r1, r2) = analysis::find_two_trees_roots(g).ok_or_else(|| {
            RoutingError::property("the graph does not satisfy the two-trees property")
        })?;
        Self::build_with_roots(g, r1, r2, kind)
    }

    /// Builds a bipolar routing with caller-chosen roots.
    ///
    /// # Errors
    ///
    /// As [`BipolarRouting::build`], plus
    /// [`RoutingError::PropertyNotSatisfied`] if `(r1, r2)` is not a
    /// two-trees pair.
    pub fn build_with_roots(
        g: &Graph,
        r1: Node,
        r2: Node,
        kind: RoutingKind,
    ) -> Result<Self, RoutingError> {
        let kappa = connectivity::vertex_connectivity(g);
        if kappa == 0 {
            return Err(RoutingError::InsufficientConnectivity {
                needed: 1,
                found: 0,
            });
        }
        if !analysis::is_two_trees_pair(g, r1, r2) {
            return Err(RoutingError::property(format!(
                "nodes {r1} and {r2} are not two-trees roots"
            )));
        }
        let routing = match kind {
            RoutingKind::Unidirectional => construct_unidirectional(g, r1, r2, kappa)?,
            RoutingKind::Bidirectional => construct_bidirectional(g, r1, r2, kappa)?,
        };
        Ok(BipolarRouting {
            routing,
            r1,
            r2,
            m1: g.neighbors(r1).to_vec(),
            m2: g.neighbors(r2).to_vec(),
            t: kappa - 1,
        })
    }

    /// The underlying route table.
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// Consumes the construction, returning the owned route table.
    pub fn into_routing(self) -> Routing {
        self.routing
    }

    /// The two roots `(r1, r2)`.
    pub fn roots(&self) -> (Node, Node) {
        (self.r1, self.r2)
    }

    /// The polar set `M1 = Γ(r1)`.
    pub fn m1(&self) -> &[Node] {
        &self.m1
    }

    /// The polar set `M2 = Γ(r2)`.
    pub fn m2(&self) -> &[Node] {
        &self.m2
    }

    /// The number of faults `t` the construction tolerates.
    pub fn tolerated_faults(&self) -> usize {
        self.t
    }

    /// Theorem 20's `(4, t)` guarantee for unidirectional routings,
    /// Theorem 23's `(5, t)` for bidirectional ones, with this table's
    /// exact costs.
    pub fn guarantee(&self) -> Guarantee {
        let (theorem, diameter) = match self.routing.kind() {
            RoutingKind::Unidirectional => (TheoremId::Theorem20, 4),
            RoutingKind::Bidirectional => (TheoremId::Theorem23, 5),
        };
        Guarantee {
            scheme: "bipolar",
            theorem,
            diameter,
            faults: self.t,
            routes: self.routing.route_count(),
            memory_bytes: self.routing.memory_bytes(),
            audited: false,
        }
    }
}

/// Components B-POL 1–6 (Theorem 20).
fn construct_unidirectional(
    g: &Graph,
    r1: Node,
    r2: Node,
    kappa: usize,
) -> Result<Routing, RoutingError> {
    let n = g.node_count();
    let m1 = g.neighbor_set(r1);
    let m2 = g.neighbor_set(r2);
    let mut routing = Routing::new(n, RoutingKind::Unidirectional);
    // B-POL 6: direct edges, both directions.
    for (u, v) in g.edges() {
        routing.insert(Path::edge(u, v).expect("valid edge"))?;
        routing.insert(Path::edge(v, u).expect("valid edge"))?;
    }
    // B-POL 1 and B-POL 2: tree routings toward the poles, derived per
    // source in parallel; insertion stays sequential in source order.
    let nodes: Vec<Node> = g.nodes().collect();
    let batches = par::ordered_map(nodes.len(), par::default_threads(), |idx| {
        let x = nodes[idx];
        let mut paths = Vec::new();
        if !m1.contains(x) {
            paths.extend(tree_routing(g, x, &m1, kappa)?);
        }
        if !m2.contains(x) {
            paths.extend(tree_routing(g, x, &m2, kappa)?);
        }
        Ok::<_, RoutingError>(paths)
    });
    for batch in batches {
        for p in batch? {
            routing.insert(p)?;
        }
    }
    // B-POL 3 and B-POL 4: pole members into every Γ-set of their tree.
    for members in [&m1, &m2] {
        insert_pole_tree_routings(&mut routing, g, members, kappa)?;
    }
    // B-POL 5: complete missing reverse directions along the same path
    // (built directly in reverse travel order — one collect per route).
    let missing: Vec<Path> = routing
        .routes()
        .filter(|&(s, d, _)| routing.route(d, s).is_none())
        .map(|(_, _, view)| {
            Path::new(view.iter().rev().collect()).expect("stored routes are simple")
        })
        .collect();
    for p in missing {
        routing.insert(p)?;
    }
    routing.freeze();
    Ok(routing)
}

/// Derives tree routings from every pole member `m_i` into every Γ(m_j)
/// of its pole (components B-POL 3/4 and 2B-POL 3/4), one member per
/// parallel work item, and inserts them in member order.
fn insert_pole_tree_routings(
    routing: &mut Routing,
    g: &Graph,
    members: &NodeSet,
    kappa: usize,
) -> Result<(), RoutingError> {
    let kind = routing.kind();
    let list: Vec<Node> = members.iter().collect();
    let batches = par::ordered_map(list.len(), par::default_threads(), |idx| {
        let mi = list[idx];
        let mut paths = Vec::new();
        for &mj in &list {
            let targets = g.neighbor_set(mj);
            debug_assert!(
                kind == RoutingKind::Bidirectional || mi == mj || !targets.contains(mi),
                "pole sets are independent"
            );
            paths.extend(tree_routing(g, mi, &targets, kappa)?);
        }
        Ok::<_, RoutingError>(paths)
    });
    for batch in batches {
        for p in batch? {
            routing.insert(p)?;
        }
    }
    Ok(())
}

/// Components 2B-POL 1–5 (Theorem 23).
fn construct_bidirectional(
    g: &Graph,
    r1: Node,
    r2: Node,
    kappa: usize,
) -> Result<Routing, RoutingError> {
    let n = g.node_count();
    let m1 = g.neighbor_set(r1);
    let m2 = g.neighbor_set(r2);
    // Γ1 = union of Γ(m) over m ∈ M1 (contains r1); similarly Γ2.
    let mut gamma1 = NodeSet::new(n);
    for m in &m1 {
        gamma1.union_with(&g.neighbor_set(m));
    }
    let mut gamma2 = NodeSet::new(n);
    for m in &m2 {
        gamma2.union_with(&g.neighbor_set(m));
    }
    let mut routing = Routing::new(n, RoutingKind::Bidirectional);
    // 2B-POL 5: direct edges.
    insert_edge_routes(&mut routing, g)?;
    // 2B-POL 1: x ∉ M ∪ Γ1 routes to M1. Excluding Γ1 keeps these
    // bidirectional routes off the pairs that 2B-POL 3 defines, and
    // excluding all of M makes the construction asymmetric: M2 members
    // reach M1 only through Property 2B-POL 3's M1-to-M2 links.
    //
    // 2B-POL 2: x ∉ M2 ∪ Γ2 routes to M2 (this includes every M1 member,
    // which yields Property 2B-POL 3). Both components derive their tree
    // routings per source in parallel, preserving the serial insertion
    // order (all of 2B-POL 1, then all of 2B-POL 2).
    let nodes: Vec<Node> = g.nodes().collect();
    let pol1 = |x: Node| !m1.contains(x) && !m2.contains(x) && !gamma1.contains(x);
    let pol2 = |x: Node| !m2.contains(x) && !gamma2.contains(x);
    let components: [(&NodeSet, &(dyn Fn(Node) -> bool + Sync)); 2] = [(&m1, &pol1), (&m2, &pol2)];
    for (targets, include) in components {
        let batches = par::ordered_map(nodes.len(), par::default_threads(), |idx| {
            let x = nodes[idx];
            if include(x) {
                tree_routing(g, x, targets, kappa)
            } else {
                Ok(Vec::new())
            }
        });
        for batch in batches {
            for p in batch? {
                routing.insert(p)?;
            }
        }
    }
    // 2B-POL 3 and 2B-POL 4: pole members into every Γ-set of their tree.
    for members in [&m1, &m2] {
        insert_pole_tree_routings(&mut routing, g, members, kappa)?;
    }
    routing.freeze();
    Ok(routing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify_tolerance, FaultStrategy};
    use ftr_graph::gen;

    #[test]
    fn unidirectional_builds_on_long_cycle() {
        let g = gen::cycle(12).unwrap();
        let b = BipolarRouting::build(&g, RoutingKind::Unidirectional).unwrap();
        b.routing().validate(&g).unwrap();
        assert_eq!(b.tolerated_faults(), 1);
        assert_eq!(b.m1().len(), 2);
        let (r1, r2) = b.roots();
        assert!(analysis::is_two_trees_pair(&g, r1, r2));
    }

    #[test]
    fn theorem_20_bound_exhaustive_on_cycle() {
        let g = gen::cycle(12).unwrap(); // t = 1
        let b = BipolarRouting::build(&g, RoutingKind::Unidirectional).unwrap();
        let report = verify_tolerance(b.routing(), 1, FaultStrategy::Exhaustive, 4);
        assert!(report.satisfies(&b.guarantee().claim()), "{report}");
    }

    #[test]
    fn theorem_23_bound_exhaustive_on_cycle() {
        let g = gen::cycle(12).unwrap();
        let b = BipolarRouting::build(&g, RoutingKind::Bidirectional).unwrap();
        b.routing().validate(&g).unwrap();
        let report = verify_tolerance(b.routing(), 1, FaultStrategy::Exhaustive, 4);
        assert!(report.satisfies(&b.guarantee().claim()), "{report}");
    }

    #[test]
    fn bounds_on_ccc_with_explicit_roots() {
        // CCC(5) has girth 5 and diameter >= 5: two-trees roots exist.
        let g = gen::cube_connected_cycles(5).unwrap(); // 3-connected: t = 2
        let b = BipolarRouting::build(&g, RoutingKind::Unidirectional).unwrap();
        b.routing().validate(&g).unwrap();
        // Sample fault pairs (exhaustive over 160 nodes is for benches).
        let report = verify_tolerance(
            b.routing(),
            2,
            FaultStrategy::RandomSample {
                trials: 40,
                seed: 9,
            },
            4,
        );
        assert!(report.satisfies(&b.guarantee().claim()), "{report}");
    }

    #[test]
    fn rejects_graphs_without_property() {
        let g = gen::hypercube(3).unwrap(); // 4-cycles everywhere
        assert!(matches!(
            BipolarRouting::build(&g, RoutingKind::Unidirectional),
            Err(RoutingError::PropertyNotSatisfied { .. })
        ));
    }

    #[test]
    fn rejects_bad_explicit_roots() {
        let g = gen::cycle(12).unwrap();
        assert!(matches!(
            BipolarRouting::build_with_roots(&g, 0, 3, RoutingKind::Unidirectional),
            Err(RoutingError::PropertyNotSatisfied { .. })
        ));
    }

    #[test]
    fn unidirectional_routing_has_all_reverse_directions() {
        // B-POL 5 guarantees every pair routed forward is routed back.
        let g = gen::cycle(12).unwrap();
        let b = BipolarRouting::build(&g, RoutingKind::Unidirectional).unwrap();
        for (s, d, _) in b.routing().routes() {
            assert!(
                b.routing().route(d, s).is_some(),
                "missing reverse of ({s}, {d})"
            );
        }
    }
}

//! Tree routings (Lemma 2): node-disjoint paths from a node into a
//! separating set, with the direct-edge shortcut rule.
//!
//! A *(unidirectional) tree routing* from `x` to a node set `M` connects
//! `x` to exactly `k` distinct members of `M` by paths that are
//! node-disjoint except at `x`, stop at their first `M`-node, and — the
//! additional requirement that keeps the paper's constructions
//! conflict-free — use the direct edge whenever `x` is adjacent to the
//! path's endpoint.
//!
//! Lemma 1: if `x` is non-faulty and fewer than `k` faults occur, at
//! least one of the `k` routes survives, so `x` keeps a distance-1 link
//! into `M` in the surviving graph.

use ftr_graph::{flow, Graph, Node, NodeSet, Path};

use crate::RoutingError;

/// Builds a tree routing from `x` into `targets` with exactly `k` paths.
///
/// The paths are found by unit-node-capacity max flow (exact, per
/// Menger), truncated at their first target, and post-processed with the
/// shortcut rule: a path whose endpoint is adjacent to `x` is replaced by
/// the direct edge (this preserves disjointness, because the endpoint
/// already belonged to the path).
///
/// # Errors
///
/// * [`RoutingError::InsufficientConnectivity`] if fewer than `k`
///   disjoint paths exist (the graph's connectivity is below `k` or the
///   target set is too thin).
/// * [`RoutingError::Graph`] if `x` or `targets` are invalid (empty set,
///   set containing `x`, wrong capacity).
///
/// # Example
///
/// ```
/// use ftr_core::tree::tree_routing;
/// use ftr_graph::gen;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = gen::hypercube(3)?;
/// let targets = g.neighbor_set(7); // Γ(7) separates 0 from 7
/// let paths = tree_routing(&g, 0, &targets, 3)?;
/// assert_eq!(paths.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn tree_routing(
    g: &Graph,
    x: Node,
    targets: &NodeSet,
    k: usize,
) -> Result<Vec<Path>, RoutingError> {
    let mut paths = flow::vertex_disjoint_paths_to_set(g, x, targets, Some(k))?;
    if paths.len() < k {
        return Err(RoutingError::InsufficientConnectivity {
            needed: k,
            found: paths.len(),
        });
    }
    for p in &mut paths {
        if p.len() > 1 && g.has_edge(x, p.target()) {
            *p = Path::edge(x, p.target()).expect("x differs from its neighbor");
        }
    }
    Ok(paths)
}

/// Checks that `paths` form a valid tree routing from `x` into `targets`:
/// correct endpoints, first-target truncation, pairwise node-disjointness
/// away from `x`, distinct endpoints, and the direct-edge shortcut rule.
///
/// Used by tests and by the experiment harness as an independent audit
/// of [`tree_routing`]'s output.
pub fn is_tree_routing(g: &Graph, x: Node, targets: &NodeSet, paths: &[Path]) -> bool {
    let mut used = NodeSet::new(g.node_count());
    let mut endpoints = NodeSet::new(g.node_count());
    for p in paths {
        if p.validate_in(g).is_err() || p.source() != x || p.len() == 0 {
            return false;
        }
        let end = p.target();
        if !targets.contains(end) || !endpoints.insert(end) {
            return false;
        }
        if p.interior().any(|v| targets.contains(v) || v == x) {
            return false;
        }
        if g.has_edge(x, end) && p.len() != 1 {
            return false; // shortcut rule violated
        }
        for v in p.nodes().iter().copied().filter(|&v| v != x) {
            if !used.insert(v) {
                return false; // paths overlap away from x
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_graph::{connectivity, gen};

    #[test]
    fn tree_routing_on_hypercube_neighborhoods() {
        let g = gen::hypercube(4).unwrap();
        for m in [0u32, 5, 15] {
            let targets = g.neighbor_set(m);
            for x in g.nodes() {
                if x == m || targets.contains(x) {
                    continue;
                }
                let paths = tree_routing(&g, x, &targets, 4).unwrap();
                assert!(is_tree_routing(&g, x, &targets, &paths), "x={x} m={m}");
            }
        }
    }

    #[test]
    fn shortcut_rule_enforced() {
        // x adjacent to a target: the route must be that single edge.
        let g = gen::cycle(6).unwrap();
        let targets = NodeSet::from_nodes(6, [1, 4]);
        let paths = tree_routing(&g, 0, &targets, 2).unwrap();
        assert!(is_tree_routing(&g, 0, &targets, &paths));
        let to_one = paths.iter().find(|p| p.target() == 1).unwrap();
        assert_eq!(to_one.nodes(), &[0, 1]);
    }

    #[test]
    fn insufficient_connectivity_reported() {
        let g = gen::cycle(6).unwrap(); // 2-connected
        let targets = NodeSet::from_nodes(6, [2, 3, 4]);
        let err = tree_routing(&g, 0, &targets, 3).unwrap_err();
        assert_eq!(
            err,
            RoutingError::InsufficientConnectivity {
                needed: 3,
                found: 2
            }
        );
    }

    #[test]
    fn separator_tree_routings_exist_for_every_outside_node() {
        // Lemma 2 on a minimum separator: every x outside M gets a
        // κ-path tree routing.
        for g in [
            gen::petersen(),
            gen::torus(3, 4).unwrap(),
            gen::harary(4, 12).unwrap(),
        ] {
            let k = connectivity::vertex_connectivity(&g);
            let sep = connectivity::min_separator(&g).unwrap();
            for x in g.nodes() {
                if sep.contains(x) {
                    continue;
                }
                let paths = tree_routing(&g, x, &sep, k).unwrap();
                assert!(is_tree_routing(&g, x, &sep, &paths), "{g:?} x={x}");
            }
        }
    }

    #[test]
    fn audit_rejects_bad_routings() {
        let g = gen::cycle(5).unwrap();
        let targets = NodeSet::from_nodes(5, [2, 3]);
        // wrong source
        let p = vec![Path::new(vec![1, 2]).unwrap()];
        assert!(!is_tree_routing(&g, 0, &targets, &p));
        // endpoint not in target set
        let p = vec![Path::new(vec![0, 1]).unwrap()];
        assert!(!is_tree_routing(&g, 0, &targets, &p));
        // duplicate endpoints
        let p = vec![
            Path::new(vec![0, 1, 2]).unwrap(),
            Path::new(vec![0, 1, 2]).unwrap(),
        ];
        assert!(!is_tree_routing(&g, 0, &targets, &p));
        // passes through a target
        let g2 = gen::path_graph(4).unwrap();
        let t2 = NodeSet::from_nodes(4, [1, 3]);
        let p = vec![Path::new(vec![0, 1, 2, 3]).unwrap()];
        assert!(!is_tree_routing(&g2, 0, &t2, &p));
    }

    #[test]
    fn lemma_1_one_route_survives() {
        // With k = 3 paths and at most 2 faults not hitting x, some path
        // survives — exhaustively checked on the Petersen graph.
        let g = gen::petersen();
        let targets = g.neighbor_set(9);
        let paths = tree_routing(&g, 0, &targets, 3).unwrap();
        for f1 in g.nodes() {
            for f2 in g.nodes() {
                if f1 == 0 || f2 == 0 {
                    continue;
                }
                let faults = NodeSet::from_nodes(10, [f1, f2]);
                assert!(
                    paths.iter().any(|p| !p.is_affected_by(&faults)),
                    "faults {{{f1}, {f2}}} killed all tree routes"
                );
            }
        }
    }
}

use ftr_graph::{DiGraph, Node, NodeSet, INFINITY};

use crate::{MultiRouting, Routing};

/// Anything that can produce a surviving route graph under a fault set.
///
/// Implemented by [`Routing`] (one route per ordered pair),
/// [`MultiRouting`] (Section 6's parallel routes) and
/// [`crate::CompiledRoutes`] (the bitset-compiled engine). The tolerance
/// verifier is generic over this trait: the route-walk implementations
/// serve as the reference semantics, while the compiled engine overrides
/// the provided methods with mask-based fast paths.
pub trait RouteTable {
    /// Node count of the underlying network.
    fn node_count(&self) -> usize;

    /// Builds the surviving route graph `R(G, ρ)/F`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `faults` was sized for a different node
    /// count.
    fn surviving(&self, faults: &NodeSet) -> SurvivingGraph;

    /// The diameter of the surviving route graph under `faults` — the
    /// paper's figure of merit, `None` meaning disconnection.
    ///
    /// The provided implementation materializes the surviving graph;
    /// fast implementations override it to measure without building a
    /// [`DiGraph`].
    ///
    /// # Panics
    ///
    /// Panics if `faults` was sized for a different node count.
    fn surviving_diameter(&self, faults: &NodeSet) -> Option<u32> {
        self.surviving(faults).diameter()
    }

    /// Surviving diameters for a batch of fault sets, answered in input
    /// order.
    ///
    /// The provided implementation maps [`RouteTable::surviving_diameter`]
    /// over the slice and is the reference semantics; the compiled
    /// engine ([`crate::CompiledRoutes`]) overrides it with a
    /// scratch-reusing evaluation that touches only the routes through
    /// each set's faulty nodes and restores them afterwards, so a batch
    /// never re-copies the base route graph. Results are bit-identical
    /// to calling the one-shot path per set.
    ///
    /// # Panics
    ///
    /// Panics if any fault set was sized for a different node count.
    fn surviving_diameter_batch(&self, fault_sets: &[NodeSet]) -> Vec<Option<u32>> {
        fault_sets
            .iter()
            .map(|f| self.surviving_diameter(f))
            .collect()
    }

    /// An incremental fault cursor over this table, used by the
    /// verifier's exhaustive enumeration and adversarial hill climbing
    /// (both toggle one fault at a time).
    ///
    /// The provided implementation re-walks routes on every evaluation;
    /// the compiled engine overrides it with per-route kill counting.
    fn cursor(&self) -> Box<dyn FaultCursor + '_>
    where
        Self: Sized,
    {
        Box::new(WalkCursor {
            table: self,
            faults: NodeSet::new(self.node_count()),
        })
    }
}

/// A mutable fault set over a fixed route table, evaluated between
/// single-node toggles.
///
/// The exhaustive verifier's depth-first enumeration and the adversarial
/// search's hill-climbing swaps both change one fault at a time; a
/// cursor lets implementations carry state across those toggles instead
/// of re-deriving the surviving graph from scratch.
pub trait FaultCursor {
    /// Marks `v` faulty.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or already faulty.
    fn insert(&mut self, v: Node);

    /// Marks `v` healthy again.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or not currently faulty.
    fn remove(&mut self, v: Node);

    /// The surviving diameter under the current fault set.
    fn diameter(&mut self) -> Option<u32>;

    /// The current fault set.
    fn faults(&self) -> &NodeSet;
}

/// The reference cursor: keeps a [`NodeSet`] and rebuilds the surviving
/// graph on every evaluation (the pre-engine behavior).
struct WalkCursor<'a, T: RouteTable> {
    table: &'a T,
    faults: NodeSet,
}

impl<T: RouteTable> FaultCursor for WalkCursor<'_, T> {
    fn insert(&mut self, v: Node) {
        assert!(self.faults.insert(v), "node {v} is already faulty");
    }

    fn remove(&mut self, v: Node) {
        assert!(self.faults.remove(v), "node {v} is not faulty");
    }

    fn diameter(&mut self) -> Option<u32> {
        self.table.surviving_diameter(&self.faults)
    }

    fn faults(&self) -> &NodeSet {
        &self.faults
    }
}

/// The surviving route graph `R(G, ρ)/F`: all non-faulty nodes, with an
/// arc `x → y` iff `ρ(x, y)` exists and no node of that route is faulty.
///
/// For a bidirectional routing the arc set is symmetric; it is kept as a
/// directed graph uniformly.
///
/// # Example
///
/// ```
/// use ftr_core::{RouteTable, Routing, RoutingKind};
/// use ftr_graph::{NodeSet, Path};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut r = Routing::new(4, RoutingKind::Bidirectional);
/// r.insert(Path::new(vec![0, 1, 2])?)?; // route 0 <-> 2 through 1
/// r.insert(Path::new(vec![1, 2])?)?;
/// let survivors = r.surviving(&NodeSet::from_nodes(4, [1]));
/// assert!(!survivors.has_edge(0, 2), "node 1 failed, route affected");
/// assert!(!survivors.has_edge(1, 2), "faulty endpoints drop out");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SurvivingGraph {
    digraph: DiGraph,
    faults: NodeSet,
}

impl SurvivingGraph {
    pub(crate) fn from_routes(
        n: usize,
        faults: &NodeSet,
        routes: impl Iterator<Item = (Node, Node, bool)>,
    ) -> Self {
        assert_eq!(
            faults.capacity(),
            n,
            "fault set capacity must equal the routing's node count"
        );
        let mut digraph = DiGraph::new(n);
        for (src, dst, survives) in routes {
            if survives && !faults.contains(src) && !faults.contains(dst) {
                digraph
                    .add_arc(src, dst)
                    .expect("route endpoints are valid distinct nodes");
            }
        }
        SurvivingGraph {
            digraph,
            faults: faults.clone(),
        }
    }

    /// The directed graph of surviving routes.
    pub fn digraph(&self) -> &DiGraph {
        &self.digraph
    }

    /// The fault set this surviving graph was built under.
    pub fn faults(&self) -> &NodeSet {
        &self.faults
    }

    /// Number of surviving (non-faulty) nodes.
    pub fn surviving_count(&self) -> usize {
        self.digraph.node_count() - self.faults.len()
    }

    /// Returns `true` if the route `x → y` survived.
    pub fn has_edge(&self, x: Node, y: Node) -> bool {
        self.digraph.has_arc(x, y)
    }

    /// Distance from `x` to `y` in the surviving graph, or [`INFINITY`].
    ///
    /// Faulty endpoints yield [`INFINITY`].
    pub fn distance(&self, x: Node, y: Node) -> u32 {
        if self.faults.contains(x) || self.faults.contains(y) {
            return INFINITY;
        }
        self.digraph.bfs_distances(x, Some(&self.faults))[y as usize]
    }

    /// The diameter over all ordered pairs of surviving nodes, or `None`
    /// if some surviving node cannot reach another — the paper's
    /// figure of merit.
    pub fn diameter(&self) -> Option<u32> {
        self.digraph.diameter(Some(&self.faults))
    }
}

impl RouteTable for Routing {
    fn node_count(&self) -> usize {
        Routing::node_count(self)
    }

    fn surviving(&self, faults: &NodeSet) -> SurvivingGraph {
        SurvivingGraph::from_routes(
            Routing::node_count(self),
            faults,
            self.routes()
                .map(|(s, d, view)| (s, d, !view.is_affected_by(faults))),
        )
    }
}

impl RouteTable for MultiRouting {
    fn node_count(&self) -> usize {
        MultiRouting::node_count(self)
    }

    fn surviving(&self, faults: &NodeSet) -> SurvivingGraph {
        SurvivingGraph::from_routes(
            MultiRouting::node_count(self),
            faults,
            self.route_bundles()
                .map(|(s, d, views)| (s, d, views.iter().any(|v| !v.is_affected_by(faults)))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoutingKind;
    use ftr_graph::Path;

    fn demo_routing() -> Routing {
        // Square 0-1-2-3 with routes along the square plus a two-hop
        // route 0 -> 2 through 1.
        let mut r = Routing::new(4, RoutingKind::Bidirectional);
        for (a, b) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            r.insert(Path::new(vec![a, b]).unwrap()).unwrap();
        }
        r.insert(Path::new(vec![0, 1, 2]).unwrap()).unwrap();
        r
    }

    #[test]
    fn no_faults_keeps_every_route() {
        let r = demo_routing();
        let s = r.surviving(&NodeSet::new(4));
        assert_eq!(s.surviving_count(), 4);
        assert!(s.has_edge(0, 2));
        assert!(s.has_edge(2, 0));
        assert_eq!(s.diameter(), Some(2)); // e.g. 1 -> 3 takes two routes
    }

    #[test]
    fn fault_on_interior_kills_route_but_not_detour() {
        let r = demo_routing();
        let faults = NodeSet::from_nodes(4, [1]);
        let s = r.surviving(&faults);
        assert!(!s.has_edge(0, 2), "route through faulty node 1 is affected");
        assert!(s.has_edge(0, 3));
        assert_eq!(s.distance(0, 2), 2); // 0 -> 3 -> 2
        assert_eq!(s.diameter(), Some(2));
    }

    #[test]
    fn fault_on_endpoint_removes_node() {
        let r = demo_routing();
        let faults = NodeSet::from_nodes(4, [0]);
        let s = r.surviving(&faults);
        assert_eq!(s.surviving_count(), 3);
        assert_eq!(s.distance(0, 2), INFINITY);
        assert_eq!(s.diameter(), Some(2)); // path 1 - 2 - 3
    }

    #[test]
    fn disconnection_yields_none() {
        // Only route is 0 -> 1 -> 2; killing 1 strands 0 from 2.
        let mut r = Routing::new(3, RoutingKind::Bidirectional);
        r.insert(Path::new(vec![0, 1, 2]).unwrap()).unwrap();
        r.insert(Path::new(vec![0, 1]).unwrap()).unwrap();
        r.insert(Path::new(vec![1, 2]).unwrap()).unwrap();
        let s = r.surviving(&NodeSet::from_nodes(3, [1]));
        assert_eq!(s.diameter(), None);
    }

    #[test]
    fn unidirectional_surviving_graph_is_asymmetric() {
        let mut r = Routing::new(3, RoutingKind::Unidirectional);
        r.insert(Path::new(vec![0, 1]).unwrap()).unwrap();
        let s = r.surviving(&NodeSet::new(3));
        assert!(s.has_edge(0, 1));
        assert!(!s.has_edge(1, 0));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn mismatched_fault_capacity_panics() {
        let r = demo_routing();
        let _ = r.surviving(&NodeSet::new(9));
    }
}

use std::collections::HashMap;
use std::fmt;

use ftr_graph::{nodes_affected_by, validate_nodes_in, Graph, GraphError, Node, NodeSet, Path};

use crate::RoutingError;

/// Whether a routing fixes one path per ordered pair independently, or
/// the same path for both directions of every pair.
///
/// The paper proves different bounds for the two kinds: e.g. the bipolar
/// construction is (4, t)-tolerant unidirectionally but (5, t)-tolerant
/// bidirectionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RoutingKind {
    /// `ρ(x, y)` and `ρ(y, x)` are independent routes.
    Unidirectional,
    /// `ρ(x, y)` and `ρ(y, x)` always use the same path.
    Bidirectional,
}

#[derive(Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct RouteRef {
    path: u32,
    forward: bool,
}

/// Mutable construction state: one [`Path`] allocation per stored route
/// and a hash map from ordered pairs to path references.
#[derive(Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct Builder {
    paths: Vec<Path>,
    table: HashMap<(Node, Node), RouteRef>,
}

/// The frozen table: a pair-indexed CSR layout over one flat node arena.
///
/// Rows are sources; within a row the destinations are ascending, so a
/// lookup is a binary search of one contiguous row and a full iteration
/// is a single linear scan in `(src, dst)` order. Each stored path lives
/// once in `arena`, written in the travel order of its first referencing
/// pair in that scan — a canonical layout that depends only on the route
/// *set*, never on insertion order or orientation.
#[derive(Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct Frozen {
    /// CSR row offsets into the `col_*` arrays, one entry per source
    /// node plus a trailing total.
    row_off: Vec<u32>,
    /// Destination of each routed pair, ascending within a row.
    col_dst: Vec<Node>,
    /// Packed route reference per pair: `arena path id << 1 | forward`.
    col_ref: Vec<u32>,
    /// Offsets into `arena`, one entry per stored path plus a trailing
    /// total.
    path_off: Vec<u32>,
    /// Flat node arena holding every stored path back to back.
    arena: Vec<Node>,
}

impl Frozen {
    fn path_count(&self) -> usize {
        self.path_off.len() - 1
    }

    fn path_nodes(&self, p: usize) -> &[Node] {
        &self.arena[self.path_off[p] as usize..self.path_off[p + 1] as usize]
    }

    fn row(&self, s: Node) -> std::ops::Range<usize> {
        self.row_off[s as usize] as usize..self.row_off[s as usize + 1] as usize
    }

    /// O(log deg(s)) lookup: binary search of `s`'s row for `d`.
    fn lookup(&self, s: Node, d: Node) -> Option<RouteView<'_>> {
        if s as usize >= self.row_off.len() - 1 {
            return None;
        }
        let row = self.row(s);
        let pos = self.col_dst[row.clone()].binary_search(&d).ok()?;
        Some(self.entry_view(row.start + pos))
    }

    fn entry_view(&self, e: usize) -> RouteView<'_> {
        let r = self.col_ref[e];
        RouteView {
            nodes: self.path_nodes((r >> 1) as usize),
            forward: r & 1 == 1,
        }
    }
}

#[derive(Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
enum Repr {
    Building(Builder),
    Frozen(Frozen),
}

/// A routing table: a partial function assigning at most one fixed simple
/// path to each ordered pair of nodes (the paper's "miserly routing
/// function").
///
/// # Two-phase lifecycle
///
/// A routing starts in *builder* state: [`Routing::insert`] stores each
/// path once (a bidirectional pair shares one entry for both directions,
/// which makes the "same path in both directions" invariant structural)
/// behind a hash map. Inserting a *different* path for an already-routed
/// pair is an error; re-inserting the identical path is idempotent (the
/// constructions re-derive direct-edge routes in several components).
///
/// [`Routing::freeze`] then compacts the finished table into a dense
/// pair-indexed CSR layout over one flat node arena: lookups become a
/// binary search of one contiguous row, [`Routing::routes`] becomes a
/// cache-linear scan in ascending `(src, dst)` order, and the per-route
/// *metadata* shrinks to a few flat `u32` entries (replacing a hash-map
/// entry plus one heap allocation per path — how much that moves the
/// total footprint depends on route length; see `BENCH_scale.json` for
/// measured bytes/route). All constructions freeze the tables they
/// return. Inserting a *new* route into a frozen table transparently
/// thaws it back to builder state; re-inserting existing routes stays
/// idempotent without thawing.
///
/// # Example
///
/// ```
/// use ftr_core::{Routing, RoutingKind};
/// use ftr_graph::Path;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut r = Routing::new(5, RoutingKind::Bidirectional);
/// r.insert(Path::new(vec![0, 2, 4])?)?;
/// r.freeze();
/// assert_eq!(r.route(0, 4).unwrap().nodes(), vec![0, 2, 4]);
/// assert_eq!(r.route(4, 0).unwrap().nodes(), vec![4, 2, 0]);
/// assert!(r.route(0, 3).is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Routing {
    n: usize,
    kind: RoutingKind,
    repr: Repr,
}

impl Routing {
    /// Creates an empty routing for graphs on `n` nodes.
    pub fn new(n: usize, kind: RoutingKind) -> Self {
        Routing {
            n,
            kind,
            repr: Repr::Building(Builder::default()),
        }
    }

    /// The node count this routing was built for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Whether this routing is uni- or bidirectional.
    pub fn kind(&self) -> RoutingKind {
        self.kind
    }

    /// Returns `true` once the table has been compacted by
    /// [`Routing::freeze`].
    pub fn is_frozen(&self) -> bool {
        matches!(self.repr, Repr::Frozen(_))
    }

    /// Number of routed ordered pairs.
    pub fn route_count(&self) -> usize {
        match &self.repr {
            Repr::Building(b) => b.table.len(),
            Repr::Frozen(f) => f.col_dst.len(),
        }
    }

    /// Number of distinct stored paths (bidirectional pairs share one).
    pub fn path_count(&self) -> usize {
        match &self.repr {
            Repr::Building(b) => b.paths.len(),
            Repr::Frozen(f) => f.path_count(),
        }
    }

    /// Inserts `path` as the route from its source to its target; for a
    /// [`RoutingKind::Bidirectional`] routing the reverse direction is
    /// registered on the same path.
    ///
    /// Re-inserting an identical route is a no-op (frozen tables stay
    /// frozen); inserting a genuinely new route into a frozen table
    /// thaws it back to builder state first.
    ///
    /// # Errors
    ///
    /// * [`RoutingError::RouteConflict`] if a different route already
    ///   exists for the pair (in either direction, when bidirectional).
    /// * [`RoutingError::Graph`] for single-node paths (`src == dst`) or
    ///   nodes outside `0..n`.
    pub fn insert(&mut self, path: Path) -> Result<(), RoutingError> {
        let (src, dst) = (path.source(), path.target());
        if src == dst {
            return Err(RoutingError::Graph(GraphError::NonSimplePath { node: src }));
        }
        for &v in path.nodes() {
            if v as usize >= self.n {
                return Err(RoutingError::Graph(GraphError::NodeOutOfRange {
                    node: v,
                    n: self.n,
                }));
            }
        }
        // Check both directions before mutating anything.
        let directions: &[(Node, Node, bool)] = match self.kind {
            RoutingKind::Unidirectional => &[(src, dst, true)],
            RoutingKind::Bidirectional => &[(src, dst, true), (dst, src, false)],
        };
        let mut fresh = false;
        for &(a, b, forward) in directions {
            match self.route(a, b) {
                Some(existing) => {
                    if !same_nodes(existing.nodes, existing.forward == forward, path.nodes()) {
                        return Err(RoutingError::RouteConflict { src: a, dst: b });
                    }
                }
                None => fresh = true,
            }
        }
        if !fresh {
            return Ok(()); // fully idempotent re-insert
        }
        self.thaw();
        let Repr::Building(b) = &mut self.repr else {
            unreachable!("thaw leaves the table in builder state");
        };
        let idx = b.paths.len() as u32;
        b.paths.push(path);
        for &(a, b_, forward) in directions {
            b.table
                .entry((a, b_))
                .or_insert(RouteRef { path: idx, forward });
        }
        Ok(())
    }

    /// Compacts the table into the frozen CSR layout. Idempotent; a
    /// no-op on an already-frozen table.
    ///
    /// The frozen layout is canonical: stored paths are re-indexed (and
    /// re-oriented) by their first referencing pair in ascending
    /// `(src, dst)` order, so two routings holding the same route set
    /// freeze into bit-identical tables regardless of how they were
    /// built.
    pub fn freeze(&mut self) {
        let Repr::Building(builder) = &mut self.repr else {
            return;
        };
        let builder = std::mem::take(builder);
        let mut entries: Vec<((Node, Node), RouteRef)> = builder.table.into_iter().collect();
        entries.sort_unstable_by_key(|&(pair, _)| pair);

        let mut row_off = vec![0u32; self.n + 1];
        let mut col_dst = Vec::with_capacity(entries.len());
        let mut col_ref = Vec::with_capacity(entries.len());
        let mut new_id = vec![u32::MAX; builder.paths.len()];
        // Orientation each stored path was written to the arena in:
        // `true` keeps the builder's storage order.
        let mut arena_fwd = vec![true; builder.paths.len()];
        let mut path_off = vec![0u32];
        let total: usize = builder.paths.iter().map(|p| p.nodes().len()).sum();
        let mut arena = Vec::with_capacity(total);
        for &((s, d), rref) in &entries {
            let pi = rref.path as usize;
            if new_id[pi] == u32::MAX {
                new_id[pi] = (path_off.len() - 1) as u32;
                arena_fwd[pi] = rref.forward;
                let nodes = builder.paths[pi].nodes();
                if rref.forward {
                    arena.extend_from_slice(nodes);
                } else {
                    arena.extend(nodes.iter().rev().copied());
                }
                path_off.push(arena.len() as u32);
            }
            row_off[s as usize + 1] += 1;
            col_dst.push(d);
            let forward = rref.forward == arena_fwd[pi];
            col_ref.push(new_id[pi] << 1 | forward as u32);
        }
        for v in 0..self.n {
            row_off[v + 1] += row_off[v];
        }
        self.repr = Repr::Frozen(Frozen {
            row_off,
            col_dst,
            col_ref,
            path_off,
            arena,
        });
    }

    /// Rebuilds the builder state from a frozen table (inverse of
    /// [`Routing::freeze`]); a no-op when already building.
    fn thaw(&mut self) {
        let Repr::Frozen(f) = &self.repr else {
            return;
        };
        let mut paths = Vec::with_capacity(f.path_count());
        for p in 0..f.path_count() {
            paths.push(Path::new(f.path_nodes(p).to_vec()).expect("arena paths are simple"));
        }
        let mut table = HashMap::with_capacity(f.col_dst.len());
        for s in 0..self.n {
            for e in f.row(s as Node) {
                let r = f.col_ref[e];
                table.insert(
                    (s as Node, f.col_dst[e]),
                    RouteRef {
                        path: r >> 1,
                        forward: r & 1 == 1,
                    },
                );
            }
        }
        self.repr = Repr::Building(Builder { paths, table });
    }

    /// The frozen CSR arena, when the table is frozen: per-path offsets
    /// (one entry per stored path plus a trailing total) and the flat
    /// node arena they index. Snapshot writers serialize these two
    /// arrays in bulk instead of formatting one line per route.
    pub fn arena(&self) -> Option<(&[u32], &[Node])> {
        match &self.repr {
            Repr::Building(_) => None,
            Repr::Frozen(f) => Some((&f.path_off, &f.arena)),
        }
    }

    /// Approximate heap footprint of the route table in bytes.
    ///
    /// Frozen tables are measured exactly (five flat arrays); builder
    /// tables are estimated from the hash-map capacity and per-path
    /// allocations. The `e17_scale` bench reports the ratio.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        match &self.repr {
            Repr::Building(b) => {
                let paths: usize = b
                    .paths
                    .iter()
                    .map(|p| size_of::<Path>() + std::mem::size_of_val(p.nodes()))
                    .sum();
                // Hashbrown stores one (key, value) slot plus one control
                // byte per bucket of capacity.
                let bucket = size_of::<((Node, Node), RouteRef)>() + 1;
                paths + b.table.capacity() * bucket
            }
            Repr::Frozen(f) => {
                (f.row_off.len() + f.col_dst.len() + f.col_ref.len() + f.path_off.len())
                    * size_of::<u32>()
                    + f.arena.len() * size_of::<Node>()
            }
        }
    }

    /// The route from `src` to `dst`, if one is defined.
    ///
    /// On a frozen table this is a binary search of `src`'s CSR row
    /// (`O(log deg)`, effectively constant); on a builder it is a hash
    /// lookup.
    pub fn route(&self, src: Node, dst: Node) -> Option<RouteView<'_>> {
        match &self.repr {
            Repr::Building(b) => b.table.get(&(src, dst)).map(|&r| RouteView {
                nodes: b.paths[r.path as usize].nodes(),
                forward: r.forward,
            }),
            Repr::Frozen(f) => f.lookup(src, dst),
        }
    }

    /// Iterates over all routed pairs and their routes, in ascending
    /// `(src, dst)` order — deterministic in both states. On a frozen
    /// table this is a cache-linear CSR scan with no per-call
    /// allocation; a builder sorts its key set first.
    pub fn routes(&self) -> Routes<'_> {
        Routes {
            inner: match &self.repr {
                Repr::Building(b) => {
                    let mut keys: Vec<(Node, Node)> = b.table.keys().copied().collect();
                    keys.sort_unstable();
                    RoutesInner::Building {
                        builder: b,
                        keys: keys.into_iter(),
                    }
                }
                Repr::Frozen(f) => RoutesInner::Frozen { f, src: 0, at: 0 },
            },
        }
    }

    /// Checks the routing against `g`: every route must be a simple path
    /// of `g`, endpoints must match the table keys, and a bidirectional
    /// routing must pair every direction.
    ///
    /// The constructions call this after building; it mechanically
    /// verifies the paper's "at most one route between each pair" and
    /// bidirectionality claims on every graph tested. Routes are checked
    /// through the borrowing [`RouteView::validate_in`] — no per-route
    /// allocation.
    ///
    /// # Errors
    ///
    /// Returns the first violation found as a [`RoutingError`].
    pub fn validate(&self, g: &Graph) -> Result<(), RoutingError> {
        if g.node_count() != self.n {
            return Err(RoutingError::property(format!(
                "routing built for {} nodes, graph has {}",
                self.n,
                g.node_count()
            )));
        }
        for (s, d, view) in self.routes() {
            view.validate_in(g)?;
            if view.source() != s || view.target() != d {
                return Err(RoutingError::property(format!(
                    "table entry ({s}, {d}) stores a route {} -> {}",
                    view.source(),
                    view.target()
                )));
            }
            if self.kind == RoutingKind::Bidirectional && self.route(d, s).is_none() {
                return Err(RoutingError::property(format!(
                    "bidirectional routing lacks the reverse of ({s}, {d})"
                )));
            }
        }
        Ok(())
    }

    /// Summary statistics of the route table.
    pub fn stats(&self) -> RoutingStats {
        let mut max_len = 0;
        let mut total_len = 0usize;
        let mut routes = 0usize;
        for (_, _, view) in self.routes() {
            max_len = max_len.max(view.len());
            total_len += view.len();
            routes += 1;
        }
        RoutingStats {
            routes,
            stored_paths: self.path_count(),
            max_route_len: max_len,
            mean_route_len: if routes == 0 {
                0.0
            } else {
                total_len as f64 / routes as f64
            },
        }
    }
}

/// `stored` and `path` describe the same node sequence, where
/// `same_orientation` says whether they are written in the same travel
/// direction.
fn same_nodes(stored: &[Node], same_orientation: bool, path: &[Node]) -> bool {
    if stored.len() != path.len() {
        return false;
    }
    if same_orientation {
        stored == path
    } else {
        stored.iter().rev().eq(path.iter())
    }
}

impl fmt::Debug for Routing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Routing")
            .field("n", &self.n)
            .field("kind", &self.kind)
            .field("routes", &self.route_count())
            .field("frozen", &self.is_frozen())
            .finish()
    }
}

/// Iterator over all routed pairs, returned by [`Routing::routes`].
pub struct Routes<'a> {
    inner: RoutesInner<'a>,
}

enum RoutesInner<'a> {
    Building {
        builder: &'a Builder,
        keys: std::vec::IntoIter<(Node, Node)>,
    },
    Frozen {
        f: &'a Frozen,
        src: Node,
        at: usize,
    },
}

impl<'a> Iterator for Routes<'a> {
    type Item = (Node, Node, RouteView<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            RoutesInner::Building { builder, keys } => {
                let (s, d) = keys.next()?;
                let r = builder.table[&(s, d)];
                Some((
                    s,
                    d,
                    RouteView {
                        nodes: builder.paths[r.path as usize].nodes(),
                        forward: r.forward,
                    },
                ))
            }
            RoutesInner::Frozen { f, src, at } => {
                if *at >= f.col_dst.len() {
                    return None;
                }
                while f.row_off[*src as usize + 1] as usize <= *at {
                    *src += 1;
                }
                let e = *at;
                *at += 1;
                Some((*src, f.col_dst[e], f.entry_view(e)))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = match &self.inner {
            RoutesInner::Building { keys, .. } => keys.len(),
            RoutesInner::Frozen { f, at, .. } => f.col_dst.len() - at,
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Routes<'_> {}

/// A borrowed view of one route, oriented from its source to its target.
///
/// The view holds a slice of the stored node sequence (in a frozen table
/// that slice points straight into the flat arena) plus its travel
/// orientation; no method other than the explicitly-owning
/// [`RouteView::nodes`] / [`RouteView::to_path`] allocates.
#[derive(Clone, Copy)]
pub struct RouteView<'a> {
    nodes: &'a [Node],
    forward: bool,
}

impl<'a> RouteView<'a> {
    /// Crate-internal constructor used by [`crate::MultiRouting`].
    pub(crate) fn from_parts(nodes: &'a [Node], forward: bool) -> Self {
        RouteView { nodes, forward }
    }

    /// First node of the route in travel order.
    pub fn source(&self) -> Node {
        if self.forward {
            self.nodes[0]
        } else {
            *self.nodes.last().expect("routes are non-empty")
        }
    }

    /// Last node of the route in travel order.
    pub fn target(&self) -> Node {
        if self.forward {
            *self.nodes.last().expect("routes are non-empty")
        } else {
            self.nodes[0]
        }
    }

    /// Number of edges.
    #[allow(clippy::len_without_is_empty)] // routes are never empty
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Borrowing iterator over the nodes in travel order — the
    /// allocation-free counterpart of [`RouteView::nodes`], used by
    /// [`Routing::validate`] and the surviving-graph walk.
    pub fn iter(&self) -> RouteNodes<'a> {
        RouteNodes {
            nodes: self.nodes,
            forward: self.forward,
        }
    }

    /// The node sequence in travel order (allocates; prefer
    /// [`RouteView::iter`] when a borrow suffices).
    pub fn nodes(&self) -> Vec<Node> {
        self.iter().collect()
    }

    /// Returns `true` if any node of the route is in `faults` — the
    /// route is *affected* and drops out of the surviving graph.
    pub fn is_affected_by(&self, faults: &NodeSet) -> bool {
        nodes_affected_by(self.nodes, faults)
    }

    /// Returns `true` if `v` lies on the route.
    pub fn contains(&self, v: Node) -> bool {
        self.nodes.contains(&v)
    }

    /// The stored node slice (in storage orientation, which may be the
    /// reverse of travel order). Interior-set consumers — fault masks,
    /// containment — can use this directly; direction-sensitive ones
    /// should go through [`RouteView::iter`].
    pub fn stored_nodes(&self) -> &'a [Node] {
        self.nodes
    }

    /// Whether the stored slice is already in travel order.
    pub fn is_forward(&self) -> bool {
        self.forward
    }

    /// An owned copy of the route in travel order.
    pub fn to_path(&self) -> Path {
        Path::new(self.nodes()).expect("stored routes are simple paths")
    }

    /// Checks the route's nodes and edges against `g` (borrowing; see
    /// [`ftr_graph::validate_nodes_in`]).
    ///
    /// # Errors
    ///
    /// As [`Path::validate_in`].
    pub fn validate_in(&self, g: &Graph) -> Result<(), GraphError> {
        validate_nodes_in(self.nodes, g)
    }
}

impl fmt::Debug for RouteView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RouteView(")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Borrowing node iterator of one route in travel order, returned by
/// [`RouteView::iter`].
#[derive(Clone)]
pub struct RouteNodes<'a> {
    nodes: &'a [Node],
    forward: bool,
}

impl Iterator for RouteNodes<'_> {
    type Item = Node;

    fn next(&mut self) -> Option<Node> {
        let (&v, rest) = if self.forward {
            self.nodes.split_first()?
        } else {
            self.nodes.split_last()?
        };
        self.nodes = rest;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.nodes.len(), Some(self.nodes.len()))
    }
}

impl DoubleEndedIterator for RouteNodes<'_> {
    fn next_back(&mut self) -> Option<Node> {
        let (&v, rest) = if self.forward {
            self.nodes.split_last()?
        } else {
            self.nodes.split_first()?
        };
        self.nodes = rest;
        Some(v)
    }
}

impl ExactSizeIterator for RouteNodes<'_> {}

/// Summary statistics returned by [`Routing::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingStats {
    /// Routed ordered pairs.
    pub routes: usize,
    /// Distinct stored paths.
    pub stored_paths: usize,
    /// Longest route, in edges.
    pub max_route_len: usize,
    /// Mean route length over ordered pairs, in edges.
    pub mean_route_len: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(nodes: &[Node]) -> Path {
        Path::new(nodes.to_vec()).unwrap()
    }

    /// Runs a test body on both the builder and frozen form of the same
    /// routing.
    fn both_states(r: &Routing, check: impl Fn(&Routing)) {
        assert!(!r.is_frozen());
        check(r);
        let mut frozen = r.clone();
        frozen.freeze();
        assert!(frozen.is_frozen());
        check(&frozen);
    }

    #[test]
    fn unidirectional_insert_and_lookup() {
        let mut r = Routing::new(4, RoutingKind::Unidirectional);
        r.insert(path(&[0, 1, 3])).unwrap();
        both_states(&r, |r| {
            let v = r.route(0, 3).unwrap();
            assert_eq!(v.nodes(), vec![0, 1, 3]);
            assert_eq!(v.len(), 2);
            assert!(r.route(3, 0).is_none(), "unidirectional: no reverse");
            assert_eq!(r.route_count(), 1);
        });
    }

    #[test]
    fn bidirectional_insert_registers_both_directions() {
        let mut r = Routing::new(4, RoutingKind::Bidirectional);
        r.insert(path(&[0, 1, 3])).unwrap();
        both_states(&r, |r| {
            assert_eq!(r.route(0, 3).unwrap().nodes(), vec![0, 1, 3]);
            assert_eq!(r.route(3, 0).unwrap().nodes(), vec![3, 1, 0]);
            assert_eq!(r.route_count(), 2);
            assert_eq!(r.path_count(), 1, "one arena entry for both directions");
        });
    }

    #[test]
    fn conflicting_route_rejected() {
        let mut r = Routing::new(4, RoutingKind::Unidirectional);
        r.insert(path(&[0, 1, 3])).unwrap();
        assert_eq!(
            r.insert(path(&[0, 2, 3])),
            Err(RoutingError::RouteConflict { src: 0, dst: 3 })
        );
        r.freeze();
        assert_eq!(
            r.insert(path(&[0, 2, 3])),
            Err(RoutingError::RouteConflict { src: 0, dst: 3 }),
            "conflicts are detected without thawing"
        );
        assert!(r.is_frozen());
    }

    #[test]
    fn identical_reinsert_is_idempotent() {
        let mut r = Routing::new(4, RoutingKind::Bidirectional);
        r.insert(path(&[0, 1, 3])).unwrap();
        r.insert(path(&[0, 1, 3])).unwrap();
        r.insert(path(&[3, 1, 0])).unwrap(); // same path, other direction
        assert_eq!(r.route_count(), 2);
        assert_eq!(
            r.path_count(),
            1,
            "idempotent inserts do not grow the arena"
        );
        r.freeze();
        r.insert(path(&[0, 1, 3])).unwrap();
        r.insert(path(&[3, 1, 0])).unwrap();
        assert!(r.is_frozen(), "idempotent re-inserts do not thaw");
        assert_eq!(r.route_count(), 2);
    }

    #[test]
    fn inserting_new_route_thaws_and_refreezes_cleanly() {
        let mut r = Routing::new(5, RoutingKind::Bidirectional);
        r.insert(path(&[0, 1, 3])).unwrap();
        r.freeze();
        r.insert(path(&[1, 2])).unwrap();
        assert!(!r.is_frozen(), "a new route thaws the table");
        assert_eq!(r.route_count(), 4);
        r.freeze();
        assert_eq!(r.route(0, 3).unwrap().nodes(), vec![0, 1, 3]);
        assert_eq!(r.route(2, 1).unwrap().nodes(), vec![2, 1]);
    }

    #[test]
    fn bidirectional_reverse_conflict_detected() {
        let mut r = Routing::new(5, RoutingKind::Bidirectional);
        r.insert(path(&[0, 1, 3])).unwrap();
        // A different path for (3, 0) clashes with the registered reverse.
        assert_eq!(
            r.insert(path(&[3, 2, 0])),
            Err(RoutingError::RouteConflict { src: 3, dst: 0 })
        );
    }

    #[test]
    fn unidirectional_directions_are_independent() {
        let mut r = Routing::new(5, RoutingKind::Unidirectional);
        r.insert(path(&[0, 1, 3])).unwrap();
        r.insert(path(&[3, 2, 0])).unwrap();
        both_states(&r, |r| {
            assert_eq!(r.route(0, 3).unwrap().nodes(), vec![0, 1, 3]);
            assert_eq!(r.route(3, 0).unwrap().nodes(), vec![3, 2, 0]);
        });
    }

    #[test]
    fn rejects_out_of_range_and_trivial_paths() {
        let mut r = Routing::new(3, RoutingKind::Unidirectional);
        assert!(matches!(
            r.insert(path(&[0, 5])),
            Err(RoutingError::Graph(GraphError::NodeOutOfRange { .. }))
        ));
        assert!(matches!(
            r.insert(Path::new(vec![1]).unwrap()),
            Err(RoutingError::Graph(GraphError::NonSimplePath { .. }))
        ));
    }

    #[test]
    fn route_view_fault_queries() {
        let mut r = Routing::new(4, RoutingKind::Bidirectional);
        r.insert(path(&[0, 1, 3])).unwrap();
        both_states(&r, |r| {
            let v = r.route(3, 0).unwrap();
            assert!(v.is_affected_by(&NodeSet::from_nodes(4, [1])));
            assert!(v.is_affected_by(&NodeSet::from_nodes(4, [3])));
            assert!(!v.is_affected_by(&NodeSet::from_nodes(4, [2])));
            assert!(v.contains(1));
            assert_eq!(v.to_path().nodes(), &[3, 1, 0]);
        });
    }

    #[test]
    fn route_nodes_iterator_is_double_ended_and_exact() {
        let mut r = Routing::new(4, RoutingKind::Bidirectional);
        r.insert(path(&[0, 1, 3])).unwrap();
        r.freeze();
        let v = r.route(3, 0).unwrap();
        let it = v.iter();
        assert_eq!(it.len(), 3);
        assert_eq!(it.clone().collect::<Vec<_>>(), vec![3, 1, 0]);
        assert_eq!(it.rev().collect::<Vec<_>>(), vec![0, 1, 3]);
        let mut it = v.iter();
        assert_eq!(it.next(), Some(3));
        assert_eq!(it.next_back(), Some(0));
        assert_eq!(it.next(), Some(1));
        assert_eq!(it.next(), None);
    }

    #[test]
    fn validate_against_graph() {
        let g = Graph::from_edges(4, [(0, 1), (1, 3)]).unwrap();
        let mut r = Routing::new(4, RoutingKind::Bidirectional);
        r.insert(path(&[0, 1, 3])).unwrap();
        both_states(&r, |r| r.validate(&g).unwrap());

        let mut bad = Routing::new(4, RoutingKind::Bidirectional);
        bad.insert(path(&[0, 2, 3])).unwrap(); // 0-2 is not an edge
        both_states(&bad, |bad| {
            assert!(matches!(
                bad.validate(&g),
                Err(RoutingError::Graph(GraphError::MissingEdge { .. }))
            ));
        });

        let wrong_n = Routing::new(7, RoutingKind::Bidirectional);
        assert!(wrong_n.validate(&g).is_err());
    }

    #[test]
    fn stats_reflect_routes() {
        let mut r = Routing::new(6, RoutingKind::Bidirectional);
        r.insert(path(&[0, 1])).unwrap();
        r.insert(path(&[0, 2, 3, 4])).unwrap();
        both_states(&r, |r| {
            let s = r.stats();
            assert_eq!(s.routes, 4);
            assert_eq!(s.stored_paths, 2);
            assert_eq!(s.max_route_len, 3);
            assert!((s.mean_route_len - 2.0).abs() < 1e-12);
        });
    }

    #[test]
    fn routes_iterator_covers_table_in_sorted_order() {
        let mut r = Routing::new(4, RoutingKind::Bidirectional);
        r.insert(path(&[2, 3])).unwrap();
        r.insert(path(&[0, 1])).unwrap();
        both_states(&r, |r| {
            let pairs: Vec<(Node, Node)> = r.routes().map(|(s, d, _)| (s, d)).collect();
            assert_eq!(pairs, vec![(0, 1), (1, 0), (2, 3), (3, 2)]);
            assert_eq!(r.routes().len(), 4, "exact size");
        });
    }

    #[test]
    fn frozen_layout_is_canonical_across_build_orders() {
        // Same route set, different insertion orders and orientations:
        // the frozen tables must agree entry for entry.
        let routes: Vec<Vec<Node>> = vec![
            vec![0, 1],
            vec![1, 2],
            vec![0, 4, 2],
            vec![3, 4],
            vec![2, 3],
        ];
        let build = |order: &[usize], flip: bool| {
            let mut r = Routing::new(5, RoutingKind::Bidirectional);
            for &i in order {
                let mut nodes = routes[i].clone();
                if flip && i % 2 == 0 {
                    nodes.reverse();
                }
                r.insert(Path::new(nodes).unwrap()).unwrap();
            }
            r.freeze();
            r
        };
        let a = build(&[0, 1, 2, 3, 4], false);
        let b = build(&[4, 2, 0, 3, 1], true);
        let collect = |r: &Routing| -> Vec<(Node, Node, Vec<Node>)> {
            r.routes().map(|(s, d, v)| (s, d, v.nodes())).collect()
        };
        assert_eq!(collect(&a), collect(&b));
        assert_eq!(a.arena(), b.arena(), "bit-identical arena layout");
    }

    #[test]
    fn frozen_tables_shrink_the_footprint() {
        let mut r = Routing::new(64, RoutingKind::Bidirectional);
        for u in 0..63u32 {
            r.insert(path(&[u, u + 1])).unwrap();
        }
        let builder_bytes = r.memory_bytes();
        let mut f = r.clone();
        f.freeze();
        assert!(
            f.memory_bytes() < builder_bytes,
            "frozen {} >= builder {}",
            f.memory_bytes(),
            builder_bytes
        );
        assert_eq!(f.route_count(), r.route_count());
    }

    #[test]
    fn arena_exposed_only_when_frozen() {
        let mut r = Routing::new(4, RoutingKind::Bidirectional);
        r.insert(path(&[0, 1, 3])).unwrap();
        assert!(r.arena().is_none());
        r.freeze();
        let (off, arena) = r.arena().unwrap();
        assert_eq!(off, &[0, 3]);
        assert_eq!(arena, &[0, 1, 3]);
    }

    #[test]
    fn empty_routing_freezes() {
        let mut r = Routing::new(3, RoutingKind::Unidirectional);
        r.freeze();
        assert_eq!(r.route_count(), 0);
        assert!(r.route(0, 1).is_none());
        assert_eq!(r.routes().count(), 0);
    }
}

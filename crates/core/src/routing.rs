use std::collections::HashMap;
use std::fmt;

use ftr_graph::{Graph, GraphError, Node, NodeSet, Path};

use crate::RoutingError;

/// Whether a routing fixes one path per ordered pair independently, or
/// the same path for both directions of every pair.
///
/// The paper proves different bounds for the two kinds: e.g. the bipolar
/// construction is (4, t)-tolerant unidirectionally but (5, t)-tolerant
/// bidirectionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RoutingKind {
    /// `ρ(x, y)` and `ρ(y, x)` are independent routes.
    Unidirectional,
    /// `ρ(x, y)` and `ρ(y, x)` always use the same path.
    Bidirectional,
}

#[derive(Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct RouteRef {
    path: u32,
    forward: bool,
}

/// A routing table: a partial function assigning at most one fixed simple
/// path to each ordered pair of nodes (the paper's "miserly routing
/// function").
///
/// Paths are stored once in an arena; a bidirectional pair shares one
/// arena entry for both directions, which makes the "same path in both
/// directions" invariant structural. Inserting a *different* path for an
/// already-routed pair is an error; re-inserting the identical path is
/// idempotent (the constructions re-derive direct-edge routes in several
/// components).
///
/// # Example
///
/// ```
/// use ftr_core::{Routing, RoutingKind};
/// use ftr_graph::Path;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut r = Routing::new(5, RoutingKind::Bidirectional);
/// r.insert(Path::new(vec![0, 2, 4])?)?;
/// assert_eq!(r.route(0, 4).unwrap().nodes(), vec![0, 2, 4]);
/// assert_eq!(r.route(4, 0).unwrap().nodes(), vec![4, 2, 0]);
/// assert!(r.route(0, 3).is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Routing {
    n: usize,
    kind: RoutingKind,
    paths: Vec<Path>,
    table: HashMap<(Node, Node), RouteRef>,
}

impl Routing {
    /// Creates an empty routing for graphs on `n` nodes.
    pub fn new(n: usize, kind: RoutingKind) -> Self {
        Routing {
            n,
            kind,
            paths: Vec::new(),
            table: HashMap::new(),
        }
    }

    /// The node count this routing was built for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Whether this routing is uni- or bidirectional.
    pub fn kind(&self) -> RoutingKind {
        self.kind
    }

    /// Number of routed ordered pairs.
    pub fn route_count(&self) -> usize {
        self.table.len()
    }

    /// Number of distinct stored paths (bidirectional pairs share one).
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Inserts `path` as the route from its source to its target; for a
    /// [`RoutingKind::Bidirectional`] routing the reverse direction is
    /// registered on the same path.
    ///
    /// Re-inserting an identical route is a no-op.
    ///
    /// # Errors
    ///
    /// * [`RoutingError::RouteConflict`] if a different route already
    ///   exists for the pair (in either direction, when bidirectional).
    /// * [`RoutingError::Graph`] for single-node paths (`src == dst`) or
    ///   nodes outside `0..n`.
    pub fn insert(&mut self, path: Path) -> Result<(), RoutingError> {
        let (src, dst) = (path.source(), path.target());
        if src == dst {
            return Err(RoutingError::Graph(GraphError::NonSimplePath { node: src }));
        }
        for &v in path.nodes() {
            if v as usize >= self.n {
                return Err(RoutingError::Graph(GraphError::NodeOutOfRange {
                    node: v,
                    n: self.n,
                }));
            }
        }
        // Check both directions before mutating anything.
        let directions: &[(Node, Node, bool)] = match self.kind {
            RoutingKind::Unidirectional => &[(src, dst, true)],
            RoutingKind::Bidirectional => &[(src, dst, true), (dst, src, false)],
        };
        let mut fresh = false;
        for &(a, b, forward) in directions {
            match self.table.get(&(a, b)) {
                Some(&existing) => {
                    if !self.matches(existing, &path, forward) {
                        return Err(RoutingError::RouteConflict { src: a, dst: b });
                    }
                }
                None => fresh = true,
            }
        }
        if !fresh {
            return Ok(()); // fully idempotent re-insert
        }
        let idx = self.paths.len() as u32;
        self.paths.push(path);
        for &(a, b, forward) in directions {
            self.table
                .entry((a, b))
                .or_insert(RouteRef { path: idx, forward });
        }
        Ok(())
    }

    fn matches(&self, rref: RouteRef, path: &Path, forward: bool) -> bool {
        let stored = &self.paths[rref.path as usize];
        if stored.len() != path.len() {
            return false;
        }
        if rref.forward == forward {
            stored.nodes() == path.nodes()
        } else {
            stored.nodes().iter().rev().eq(path.nodes().iter())
        }
    }

    /// The route from `src` to `dst`, if one is defined.
    pub fn route(&self, src: Node, dst: Node) -> Option<RouteView<'_>> {
        self.table.get(&(src, dst)).map(|&r| RouteView {
            path: &self.paths[r.path as usize],
            forward: r.forward,
        })
    }

    /// Iterates over all routed pairs and their routes.
    pub fn routes(&self) -> impl Iterator<Item = (Node, Node, RouteView<'_>)> + '_ {
        self.table.iter().map(move |(&(s, d), &r)| {
            (
                s,
                d,
                RouteView {
                    path: &self.paths[r.path as usize],
                    forward: r.forward,
                },
            )
        })
    }

    /// Checks the routing against `g`: every route must be a simple path
    /// of `g`, endpoints must match the table keys, and a bidirectional
    /// routing must pair every direction.
    ///
    /// The constructions call this after building; it mechanically
    /// verifies the paper's "at most one route between each pair" and
    /// bidirectionality claims on every graph tested.
    ///
    /// # Errors
    ///
    /// Returns the first violation found as a [`RoutingError`].
    pub fn validate(&self, g: &Graph) -> Result<(), RoutingError> {
        if g.node_count() != self.n {
            return Err(RoutingError::property(format!(
                "routing built for {} nodes, graph has {}",
                self.n,
                g.node_count()
            )));
        }
        for p in &self.paths {
            p.validate_in(g)?;
        }
        for (&(s, d), &r) in &self.table {
            let view = RouteView {
                path: &self.paths[r.path as usize],
                forward: r.forward,
            };
            if view.source() != s || view.target() != d {
                return Err(RoutingError::property(format!(
                    "table entry ({s}, {d}) stores a route {} -> {}",
                    view.source(),
                    view.target()
                )));
            }
            if self.kind == RoutingKind::Bidirectional && !self.table.contains_key(&(d, s)) {
                return Err(RoutingError::property(format!(
                    "bidirectional routing lacks the reverse of ({s}, {d})"
                )));
            }
        }
        Ok(())
    }

    /// Summary statistics of the route table.
    pub fn stats(&self) -> RoutingStats {
        let mut max_len = 0;
        let mut total_len = 0usize;
        for p in &self.paths {
            max_len = max_len.max(p.len());
        }
        for (_, _, view) in self.routes() {
            total_len += view.len();
        }
        RoutingStats {
            routes: self.table.len(),
            stored_paths: self.paths.len(),
            max_route_len: max_len,
            mean_route_len: if self.table.is_empty() {
                0.0
            } else {
                total_len as f64 / self.table.len() as f64
            },
        }
    }
}

impl fmt::Debug for Routing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Routing")
            .field("n", &self.n)
            .field("kind", &self.kind)
            .field("routes", &self.table.len())
            .finish()
    }
}

/// A borrowed view of one route, oriented from its source to its target.
#[derive(Clone, Copy)]
pub struct RouteView<'a> {
    path: &'a Path,
    forward: bool,
}

impl<'a> RouteView<'a> {
    /// Crate-internal constructor used by [`crate::MultiRouting`].
    pub(crate) fn from_parts(path: &'a Path, forward: bool) -> Self {
        RouteView { path, forward }
    }

    /// First node of the route in travel order.
    pub fn source(&self) -> Node {
        if self.forward {
            self.path.source()
        } else {
            self.path.target()
        }
    }

    /// Last node of the route in travel order.
    pub fn target(&self) -> Node {
        if self.forward {
            self.path.target()
        } else {
            self.path.source()
        }
    }

    /// Number of edges.
    #[allow(clippy::len_without_is_empty)] // routes are never empty
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// The node sequence in travel order (allocates).
    pub fn nodes(&self) -> Vec<Node> {
        if self.forward {
            self.path.nodes().to_vec()
        } else {
            self.path.nodes().iter().rev().copied().collect()
        }
    }

    /// Returns `true` if any node of the route is in `faults` — the
    /// route is *affected* and drops out of the surviving graph.
    pub fn is_affected_by(&self, faults: &NodeSet) -> bool {
        self.path.is_affected_by(faults)
    }

    /// Returns `true` if `v` lies on the route.
    pub fn contains(&self, v: Node) -> bool {
        self.path.contains(v)
    }

    /// The underlying stored path (in storage orientation, which may be
    /// the reverse of travel order).
    pub fn as_stored_path(&self) -> &'a Path {
        self.path
    }

    /// An owned copy of the route in travel order.
    pub fn to_path(&self) -> Path {
        if self.forward {
            self.path.clone()
        } else {
            self.path.reversed()
        }
    }
}

impl fmt::Debug for RouteView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RouteView({})", self.to_path())
    }
}

/// Summary statistics returned by [`Routing::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingStats {
    /// Routed ordered pairs.
    pub routes: usize,
    /// Distinct stored paths.
    pub stored_paths: usize,
    /// Longest route, in edges.
    pub max_route_len: usize,
    /// Mean route length over ordered pairs, in edges.
    pub mean_route_len: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(nodes: &[Node]) -> Path {
        Path::new(nodes.to_vec()).unwrap()
    }

    #[test]
    fn unidirectional_insert_and_lookup() {
        let mut r = Routing::new(4, RoutingKind::Unidirectional);
        r.insert(path(&[0, 1, 3])).unwrap();
        let v = r.route(0, 3).unwrap();
        assert_eq!(v.nodes(), vec![0, 1, 3]);
        assert_eq!(v.len(), 2);
        assert!(r.route(3, 0).is_none(), "unidirectional: no reverse");
        assert_eq!(r.route_count(), 1);
    }

    #[test]
    fn bidirectional_insert_registers_both_directions() {
        let mut r = Routing::new(4, RoutingKind::Bidirectional);
        r.insert(path(&[0, 1, 3])).unwrap();
        assert_eq!(r.route(0, 3).unwrap().nodes(), vec![0, 1, 3]);
        assert_eq!(r.route(3, 0).unwrap().nodes(), vec![3, 1, 0]);
        assert_eq!(r.route_count(), 2);
        assert_eq!(r.path_count(), 1, "one arena entry for both directions");
    }

    #[test]
    fn conflicting_route_rejected() {
        let mut r = Routing::new(4, RoutingKind::Unidirectional);
        r.insert(path(&[0, 1, 3])).unwrap();
        assert_eq!(
            r.insert(path(&[0, 2, 3])),
            Err(RoutingError::RouteConflict { src: 0, dst: 3 })
        );
    }

    #[test]
    fn identical_reinsert_is_idempotent() {
        let mut r = Routing::new(4, RoutingKind::Bidirectional);
        r.insert(path(&[0, 1, 3])).unwrap();
        r.insert(path(&[0, 1, 3])).unwrap();
        r.insert(path(&[3, 1, 0])).unwrap(); // same path, other direction
        assert_eq!(r.route_count(), 2);
        assert_eq!(
            r.path_count(),
            1,
            "idempotent inserts do not grow the arena"
        );
    }

    #[test]
    fn bidirectional_reverse_conflict_detected() {
        let mut r = Routing::new(5, RoutingKind::Bidirectional);
        r.insert(path(&[0, 1, 3])).unwrap();
        // A different path for (3, 0) clashes with the registered reverse.
        assert_eq!(
            r.insert(path(&[3, 2, 0])),
            Err(RoutingError::RouteConflict { src: 3, dst: 0 })
        );
    }

    #[test]
    fn unidirectional_directions_are_independent() {
        let mut r = Routing::new(5, RoutingKind::Unidirectional);
        r.insert(path(&[0, 1, 3])).unwrap();
        r.insert(path(&[3, 2, 0])).unwrap();
        assert_eq!(r.route(0, 3).unwrap().nodes(), vec![0, 1, 3]);
        assert_eq!(r.route(3, 0).unwrap().nodes(), vec![3, 2, 0]);
    }

    #[test]
    fn rejects_out_of_range_and_trivial_paths() {
        let mut r = Routing::new(3, RoutingKind::Unidirectional);
        assert!(matches!(
            r.insert(path(&[0, 5])),
            Err(RoutingError::Graph(GraphError::NodeOutOfRange { .. }))
        ));
        assert!(matches!(
            r.insert(Path::new(vec![1]).unwrap()),
            Err(RoutingError::Graph(GraphError::NonSimplePath { .. }))
        ));
    }

    #[test]
    fn route_view_fault_queries() {
        let mut r = Routing::new(4, RoutingKind::Bidirectional);
        r.insert(path(&[0, 1, 3])).unwrap();
        let v = r.route(3, 0).unwrap();
        assert!(v.is_affected_by(&NodeSet::from_nodes(4, [1])));
        assert!(v.is_affected_by(&NodeSet::from_nodes(4, [3])));
        assert!(!v.is_affected_by(&NodeSet::from_nodes(4, [2])));
        assert!(v.contains(1));
        assert_eq!(v.to_path().nodes(), &[3, 1, 0]);
    }

    #[test]
    fn validate_against_graph() {
        let g = Graph::from_edges(4, [(0, 1), (1, 3)]).unwrap();
        let mut r = Routing::new(4, RoutingKind::Bidirectional);
        r.insert(path(&[0, 1, 3])).unwrap();
        r.validate(&g).unwrap();

        let mut bad = Routing::new(4, RoutingKind::Bidirectional);
        bad.insert(path(&[0, 2, 3])).unwrap(); // 0-2 is not an edge
        assert!(matches!(
            bad.validate(&g),
            Err(RoutingError::Graph(GraphError::MissingEdge { .. }))
        ));

        let wrong_n = Routing::new(7, RoutingKind::Bidirectional);
        assert!(wrong_n.validate(&g).is_err());
    }

    #[test]
    fn stats_reflect_routes() {
        let mut r = Routing::new(6, RoutingKind::Bidirectional);
        r.insert(path(&[0, 1])).unwrap();
        r.insert(path(&[0, 2, 3, 4])).unwrap();
        let s = r.stats();
        assert_eq!(s.routes, 4);
        assert_eq!(s.stored_paths, 2);
        assert_eq!(s.max_route_len, 3);
        assert!((s.mean_route_len - 2.0).abs() < 1e-12);
    }

    #[test]
    fn routes_iterator_covers_table() {
        let mut r = Routing::new(4, RoutingKind::Bidirectional);
        r.insert(path(&[0, 1])).unwrap();
        r.insert(path(&[2, 3])).unwrap();
        let mut pairs: Vec<(Node, Node)> = r.routes().map(|(s, d, _)| (s, d)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 0), (2, 3), (3, 2)]);
    }
}

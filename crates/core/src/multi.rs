//! Multiroutings (Section 6): several parallel routes per pair.
//!
//! The paper's base model allows one route per ordered pair; Section 6
//! observes that relaxing this helps:
//!
//! 1. `t + 1` disjoint parallel routes between *every* pair give a
//!    surviving diameter of 1 ([`full_multirouting`]).
//! 2. `t + 1` parallel routes only *inside the concentrator* `M`, on top
//!    of the kernel routing, give a bound of 3
//!    ([`concentrator_multirouting`]).
//! 3. With at most *two* parallel routes, a single separating set
//!    supports a bipolar-style routing ([`single_tree_multirouting`],
//!    components MULT 1–3); the paper states no bound, so experiment E11
//!    measures one.

use std::collections::HashMap;
use std::fmt;

use ftr_graph::{connectivity, flow, Graph, GraphError, Node, NodeSet, Path};

use crate::par;
use crate::routing::RoutingKind;
use crate::tree::tree_routing;
use crate::{RouteView, RoutingError};

/// A routing table allowing several parallel routes per ordered pair.
///
/// The surviving graph keeps the arc `x → y` as long as *any* of the
/// parallel routes avoids the faults.
///
/// # Example
///
/// ```
/// use ftr_core::{MultiRouting, RouteTable, RoutingKind};
/// use ftr_graph::{NodeSet, Path};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = MultiRouting::new(4, RoutingKind::Bidirectional, 2);
/// m.insert(Path::new(vec![0, 1, 2])?)?;
/// m.insert(Path::new(vec![0, 3, 2])?)?; // second parallel route: allowed
/// let s = m.surviving(&NodeSet::from_nodes(4, [1]));
/// assert!(s.has_edge(0, 2), "the detour through 3 survives");
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct MultiRouting {
    n: usize,
    kind: RoutingKind,
    max_parallel: usize,
    paths: Vec<Path>,
    table: HashMap<(Node, Node), Vec<(u32, bool)>>,
}

impl MultiRouting {
    /// Creates an empty multirouting for graphs on `n` nodes allowing up
    /// to `max_parallel` routes per ordered pair.
    ///
    /// # Panics
    ///
    /// Panics if `max_parallel == 0`.
    pub fn new(n: usize, kind: RoutingKind, max_parallel: usize) -> Self {
        assert!(
            max_parallel > 0,
            "a routing needs at least one route per pair"
        );
        MultiRouting {
            n,
            kind,
            max_parallel,
            paths: Vec::new(),
            table: HashMap::new(),
        }
    }

    /// The node count this routing was built for.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Whether this routing is uni- or bidirectional.
    pub fn kind(&self) -> RoutingKind {
        self.kind
    }

    /// The per-pair parallel route budget.
    pub fn max_parallel(&self) -> usize {
        self.max_parallel
    }

    /// Number of routed ordered pairs.
    pub fn pair_count(&self) -> usize {
        self.table.len()
    }

    /// Total number of route slots over all pairs.
    pub fn route_count(&self) -> usize {
        self.table.values().map(Vec::len).sum()
    }

    /// Approximate heap footprint of the table in bytes (stored paths
    /// plus the pair map), comparable with [`crate::Routing::memory_bytes`].
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let paths: usize = self
            .paths
            .iter()
            .map(|p| size_of::<Path>() + std::mem::size_of_val(p.nodes()))
            .sum();
        let bucket = size_of::<((Node, Node), Vec<(u32, bool)>)>() + 1;
        let refs: usize = self
            .table
            .values()
            .map(|v| v.capacity() * size_of::<(u32, bool)>())
            .sum();
        paths + self.table.capacity() * bucket + refs
    }

    /// Inserts a parallel route from `path.source()` to `path.target()`
    /// (both directions when bidirectional). Duplicate identical routes
    /// for a pair are ignored.
    ///
    /// # Errors
    ///
    /// * [`RoutingError::RouteConflict`] if the pair already holds
    ///   `max_parallel` distinct routes.
    /// * [`RoutingError::Graph`] for trivial paths or out-of-range nodes.
    pub fn insert(&mut self, path: Path) -> Result<(), RoutingError> {
        let (src, dst) = (path.source(), path.target());
        if src == dst {
            return Err(RoutingError::Graph(GraphError::NonSimplePath { node: src }));
        }
        for &v in path.nodes() {
            if v as usize >= self.n {
                return Err(RoutingError::Graph(GraphError::NodeOutOfRange {
                    node: v,
                    n: self.n,
                }));
            }
        }
        let directions: &[(Node, Node, bool)] = match self.kind {
            RoutingKind::Unidirectional => &[(src, dst, true)],
            RoutingKind::Bidirectional => &[(src, dst, true), (dst, src, false)],
        };
        // Duplicate detection and budget check before mutation.
        for &(a, b, forward) in directions {
            if let Some(existing) = self.table.get(&(a, b)) {
                if existing
                    .iter()
                    .any(|&(idx, fwd)| self.same_route(idx, fwd == forward, &path))
                {
                    return Ok(()); // identical parallel route: idempotent
                }
                if existing.len() >= self.max_parallel {
                    return Err(RoutingError::RouteConflict { src: a, dst: b });
                }
            }
        }
        let idx = self.paths.len() as u32;
        self.paths.push(path);
        for &(a, b, forward) in directions {
            self.table.entry((a, b)).or_default().push((idx, forward));
        }
        Ok(())
    }

    fn same_route(&self, idx: u32, same_orientation: bool, path: &Path) -> bool {
        let stored = &self.paths[idx as usize];
        if stored.len() != path.len() {
            return false;
        }
        if same_orientation {
            stored.nodes() == path.nodes()
        } else {
            stored.nodes().iter().rev().eq(path.nodes().iter())
        }
    }

    /// The parallel routes from `src` to `dst` (empty if the pair is
    /// unrouted).
    pub fn routes(&self, src: Node, dst: Node) -> Vec<RouteView<'_>> {
        self.table
            .get(&(src, dst))
            .map(|refs| {
                refs.iter()
                    .map(|&(idx, forward)| {
                        RouteView::from_parts(self.paths[idx as usize].nodes(), forward)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Iterates over every routed pair with its bundle of parallel
    /// routes.
    pub fn route_bundles(&self) -> impl Iterator<Item = (Node, Node, Vec<RouteView<'_>>)> + '_ {
        self.table.iter().map(move |(&(s, d), refs)| {
            let views = refs
                .iter()
                .map(|&(idx, forward)| {
                    RouteView::from_parts(self.paths[idx as usize].nodes(), forward)
                })
                .collect();
            (s, d, views)
        })
    }

    /// Checks every stored path against `g` and the per-pair budget.
    ///
    /// # Errors
    ///
    /// Returns the first violation as a [`RoutingError`].
    pub fn validate(&self, g: &Graph) -> Result<(), RoutingError> {
        if g.node_count() != self.n {
            return Err(RoutingError::property(format!(
                "multirouting built for {} nodes, graph has {}",
                self.n,
                g.node_count()
            )));
        }
        for p in &self.paths {
            p.validate_in(g)?;
        }
        for (&(s, d), refs) in &self.table {
            if refs.len() > self.max_parallel {
                return Err(RoutingError::RouteConflict { src: s, dst: d });
            }
        }
        Ok(())
    }
}

impl fmt::Debug for MultiRouting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MultiRouting")
            .field("n", &self.n)
            .field("kind", &self.kind)
            .field("max_parallel", &self.max_parallel)
            .field("pairs", &self.table.len())
            .finish()
    }
}

/// Section 6 observation (1): `t + 1` node-disjoint parallel routes
/// between every pair of nodes. With at most `t` faults every pair keeps
/// a direct surviving route, so the surviving diameter is 1.
///
/// Costs `O(n²)` max-flow computations — meant for the moderate graph
/// sizes of the experiments, not production tables.
///
/// # Errors
///
/// Returns [`RoutingError::InsufficientConnectivity`] if the graph is
/// not connected (`t + 1 = κ(G) >= 1` is required).
pub fn full_multirouting(g: &Graph) -> Result<MultiRouting, RoutingError> {
    let kappa = connectivity::vertex_connectivity(g);
    if kappa == 0 {
        return Err(RoutingError::InsufficientConnectivity {
            needed: 1,
            found: 0,
        });
    }
    let mut m = MultiRouting::new(g.node_count(), RoutingKind::Bidirectional, kappa);
    // One parallel work item per source u: the disjoint-path bundles to
    // every v > u (each an independent max flow).
    let n = g.node_count();
    let batches = par::ordered_map(n, par::default_threads(), |u| {
        let u = u as Node;
        let mut paths = Vec::new();
        for v in g.nodes().filter(|&v| v > u) {
            paths.extend(flow::vertex_disjoint_st_paths(g, u, v, Some(kappa))?);
        }
        Ok::<_, RoutingError>(paths)
    });
    for batch in batches {
        for p in batch? {
            m.insert(p)?;
        }
    }
    Ok(m)
}

/// Section 6 observation (2): the kernel routing augmented with `t + 1`
/// parallel routes between concentrator members, giving a bound of 3.
///
/// Returns the multirouting together with the separator used.
///
/// # Errors
///
/// * [`RoutingError::InsufficientConnectivity`] for disconnected graphs.
/// * [`RoutingError::PropertyNotSatisfied`] for complete graphs (no
///   separating set exists; every pair is already adjacent).
pub fn concentrator_multirouting(g: &Graph) -> Result<(MultiRouting, Vec<Node>), RoutingError> {
    let kappa = connectivity::vertex_connectivity(g);
    if kappa == 0 {
        return Err(RoutingError::InsufficientConnectivity {
            needed: 1,
            found: 0,
        });
    }
    let sep = connectivity::min_separator(g)
        .ok_or_else(|| RoutingError::property("complete graphs have no separating set"))?;
    let mut m = MultiRouting::new(g.node_count(), RoutingKind::Bidirectional, kappa);
    // KERNEL 2: direct edge routes.
    for (u, v) in g.edges() {
        m.insert(Path::edge(u, v).expect("graph edges join distinct nodes"))?;
    }
    // KERNEL 1: tree routings into the separator, derived per source in
    // parallel.
    insert_tree_routings_outside(&mut m, g, &sep, kappa)?;
    // Section 6 (2): full parallel routes inside M.
    let members: Vec<Node> = sep.iter().collect();
    for (i, &a) in members.iter().enumerate() {
        for &b in &members[i + 1..] {
            for p in flow::vertex_disjoint_st_paths(g, a, b, Some(kappa))? {
                m.insert(p)?;
            }
        }
    }
    Ok((m, members))
}

/// Section 6 observation (3): a bipolar-style routing concentrated
/// around a *single* separating set `M`, using at most two parallel
/// routes per pair (components MULT 1–3).
///
/// * MULT 1: a tree routing from each `x ∉ M` to `M`.
/// * MULT 2: tree routings from each `m_i ∈ M` to every neighbor set
///   `Γ(m_j)`.
/// * MULT 3: direct edge routes.
///
/// The paper states no bound for this variant; experiment E11 measures
/// its worst surviving diameter.
///
/// # Errors
///
/// * [`RoutingError::InsufficientConnectivity`] for disconnected graphs.
/// * [`RoutingError::PropertyNotSatisfied`] for complete graphs.
pub fn single_tree_multirouting(g: &Graph) -> Result<(MultiRouting, Vec<Node>), RoutingError> {
    let kappa = connectivity::vertex_connectivity(g);
    if kappa == 0 {
        return Err(RoutingError::InsufficientConnectivity {
            needed: 1,
            found: 0,
        });
    }
    let sep = connectivity::min_separator(g)
        .ok_or_else(|| RoutingError::property("complete graphs have no separating set"))?;
    let mut m = MultiRouting::new(g.node_count(), RoutingKind::Bidirectional, 2);
    for (u, v) in g.edges() {
        m.insert(Path::edge(u, v).expect("graph edges join distinct nodes"))?;
    }
    insert_tree_routings_outside(&mut m, g, &sep, kappa)?;
    let members: Vec<Node> = sep.iter().collect();
    for &mi in &members {
        for &mj in &members {
            if mi == mj {
                continue; // routes from m_i into its own Γ(m_i) are MULT 3 edges
            }
            let targets = g.neighbor_set(mj);
            if targets.contains(mi) {
                continue; // adjacent members already reach each other directly
            }
            for p in tree_routing(g, mi, &targets, kappa)? {
                m.insert(p)?;
            }
        }
    }
    Ok((m, members))
}

/// Derives a tree routing into `targets` for every source outside it —
/// one parallel work item per source — and inserts the batches in source
/// order (the kernel-style component shared by the concentrator and
/// single-tree multiroutings).
fn insert_tree_routings_outside(
    m: &mut MultiRouting,
    g: &Graph,
    targets: &NodeSet,
    kappa: usize,
) -> Result<(), RoutingError> {
    let outside: Vec<Node> = g.nodes().filter(|&x| !targets.contains(x)).collect();
    let batches = par::ordered_map(outside.len(), par::default_threads(), |i| {
        tree_routing(g, outside[i], targets, kappa)
    });
    for batch in batches {
        for p in batch? {
            m.insert(p)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RouteTable;
    use ftr_graph::gen;

    #[test]
    fn parallel_budget_enforced() {
        let mut m = MultiRouting::new(5, RoutingKind::Unidirectional, 2);
        m.insert(Path::new(vec![0, 1, 4]).unwrap()).unwrap();
        m.insert(Path::new(vec![0, 2, 4]).unwrap()).unwrap();
        assert_eq!(
            m.insert(Path::new(vec![0, 3, 4]).unwrap()),
            Err(RoutingError::RouteConflict { src: 0, dst: 4 })
        );
        assert_eq!(m.routes(0, 4).len(), 2);
    }

    #[test]
    fn duplicate_parallel_route_is_idempotent() {
        let mut m = MultiRouting::new(5, RoutingKind::Bidirectional, 3);
        m.insert(Path::new(vec![0, 1, 4]).unwrap()).unwrap();
        m.insert(Path::new(vec![0, 1, 4]).unwrap()).unwrap();
        m.insert(Path::new(vec![4, 1, 0]).unwrap()).unwrap();
        assert_eq!(m.route_count(), 2); // one bundle each direction
        assert_eq!(m.routes(0, 4).len(), 1);
    }

    #[test]
    fn surviving_uses_any_live_route() {
        let mut m = MultiRouting::new(4, RoutingKind::Bidirectional, 2);
        m.insert(Path::new(vec![0, 1, 2]).unwrap()).unwrap();
        m.insert(Path::new(vec![0, 3, 2]).unwrap()).unwrap();
        let s = m.surviving(&NodeSet::from_nodes(4, [1]));
        assert!(s.has_edge(0, 2));
        let s = m.surviving(&NodeSet::from_nodes(4, [1, 3]));
        assert!(!s.has_edge(0, 2));
    }

    #[test]
    fn full_multirouting_has_diameter_one_under_faults() {
        let g = gen::petersen(); // 3-connected: tolerate 2 faults
        let m = full_multirouting(&g).unwrap();
        m.validate(&g).unwrap();
        for f1 in g.nodes() {
            for f2 in g.nodes().filter(|&v| v > f1) {
                let faults = NodeSet::from_nodes(10, [f1, f2]);
                let s = m.surviving(&faults);
                assert_eq!(s.diameter(), Some(1), "faults {{{f1}, {f2}}}");
            }
        }
    }

    #[test]
    fn concentrator_multirouting_bound_three() {
        let g = gen::torus(3, 4).unwrap(); // 4-connected: tolerate 3 faults
        let (m, members) = concentrator_multirouting(&g).unwrap();
        m.validate(&g).unwrap();
        assert_eq!(members.len(), 4);
        // Spot-check a batch of fault sets of size 3.
        for seed in 0..40u32 {
            let f1 = seed % 12;
            let f2 = (seed * 5 + 1) % 12;
            let f3 = (seed * 7 + 3) % 12;
            if f1 == f2 || f2 == f3 || f1 == f3 {
                continue;
            }
            let faults = NodeSet::from_nodes(12, [f1, f2, f3]);
            let s = m.surviving(&faults);
            let d = s.diameter().expect("survives t faults");
            assert!(d <= 3, "diameter {d} with faults {faults:?}");
        }
    }

    #[test]
    fn single_tree_multirouting_respects_two_route_budget() {
        let g = gen::petersen();
        let (m, _) = single_tree_multirouting(&g).unwrap();
        m.validate(&g).unwrap();
        assert!(m.max_parallel() == 2);
        // every pair holds at most two routes (validate checked), and the
        // no-fault diameter is finite
        let s = m.surviving(&NodeSet::new(10));
        assert!(s.diameter().is_some());
    }

    #[test]
    fn complete_graph_has_no_concentrator_variant() {
        let g = gen::complete(5).unwrap();
        assert!(matches!(
            concentrator_multirouting(&g),
            Err(RoutingError::PropertyNotSatisfied { .. })
        ));
        // but the full multirouting works fine
        let m = full_multirouting(&g).unwrap();
        let s = m.surviving(&NodeSet::from_nodes(5, [0, 1, 2]));
        assert_eq!(s.diameter(), Some(1));
    }

    #[test]
    fn validate_rejects_foreign_graph() {
        let g = gen::cycle(5).unwrap();
        let mut m = MultiRouting::new(5, RoutingKind::Bidirectional, 1);
        m.insert(Path::new(vec![0, 2]).unwrap()).unwrap(); // not an edge of C5
        assert!(m.validate(&g).is_err());
        let h = gen::cycle(6).unwrap();
        assert!(m.validate(&h).is_err()); // node count mismatch
    }
}

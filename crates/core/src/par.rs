//! Minimal data-parallel reduction on `std::thread::scope`.
//!
//! The tolerance verifier used to hand-roll work distribution with
//! crossbeam scoped threads and a `parking_lot::Mutex` around the shared
//! accumulator. This module replaces that with the rayon-style shape —
//! each worker folds into a private accumulator, the fold results are
//! merged on the calling thread — without the external dependency (the
//! build environment has no crates-registry access). Work is claimed
//! dynamically from an atomic counter, so uneven items (fault-set
//! subtrees of very different sizes) still balance.
//!
//! The module is public: downstream crates (`ftr-audit`'s subtree
//! exploration, construction harnesses) reuse the same shape instead of
//! growing their own thread pools.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `worker` on up to `threads` OS threads until `items` work items
/// are consumed, returning each worker's accumulator (callers merge).
///
/// Each worker receives a claim function yielding the next unclaimed
/// item index, or `None` when the range is exhausted. Per-worker setup
/// (scratch buffers, cursors) lives inside `worker`, so no state is
/// shared mutably and no locks are held anywhere.
///
/// With `threads <= 1` (or at most one item) the work runs inline on the
/// calling thread — the verifier's single-threaded mode stays genuinely
/// single-threaded.
pub fn map_workers<R, W>(items: usize, threads: usize, worker: W) -> Vec<R>
where
    R: Send,
    W: Fn(&dyn Fn() -> Option<usize>) -> R + Sync,
{
    let counter = AtomicUsize::new(0);
    let claim = move || {
        let i = counter.fetch_add(1, Ordering::Relaxed);
        (i < items).then_some(i)
    };
    let workers = threads.min(items).max(1);
    if workers == 1 {
        return vec![worker(&claim)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| scope.spawn(|| worker(&claim)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("verifier workers do not panic"))
            .collect()
    })
}

/// Maps `f` over `0..items` on up to `threads` OS threads, returning the
/// results **in item order** — the shape every construction uses to
/// derive per-source route batches in parallel while keeping insertion
/// (and therefore conflict reporting) deterministic.
pub fn ordered_map<T, F>(items: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let parts = map_workers(items, threads, |next| {
        let mut out = Vec::new();
        while let Some(i) = next() {
            out.push((i, f(i)));
        }
        out
    });
    let mut slots: Vec<Option<T>> = (0..items).map(|_| None).collect();
    for (i, v) in parts.into_iter().flatten() {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every item is claimed exactly once"))
        .collect()
}

/// The construction-time default worker count: one per available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_map_preserves_item_order() {
        for threads in [1, 4] {
            let out = ordered_map(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(ordered_map(0, 4, |i| i).is_empty());
    }

    #[test]
    fn all_items_claimed_exactly_once() {
        let results = map_workers(1000, 4, |next| {
            let mut seen = Vec::new();
            while let Some(i) = next() {
                seen.push(i);
            }
            seen
        });
        let mut all: Vec<usize> = results.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let id = std::thread::current().id();
        let results = map_workers(5, 1, |next| {
            assert_eq!(std::thread::current().id(), id);
            let mut count = 0;
            while next().is_some() {
                count += 1;
            }
            count
        });
        assert_eq!(results, vec![5]);
    }

    #[test]
    fn zero_items_still_invokes_one_worker() {
        let results = map_workers(0, 8, |next| {
            assert!(next().is_none());
            42
        });
        assert_eq!(results, vec![42]);
    }
}

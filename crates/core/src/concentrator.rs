//! Concentrator selection: neighborhood sets packaged for the circular
//! constructions.
//!
//! A *neighborhood set* `M = {m_0, ..., m_{K-1}}` (independent nodes
//! with pairwise disjoint neighbor sets) acts as a "non-separating"
//! concentrator: the neighbor set Γ(m_i) of each member is itself a
//! separating set for `m_i`, so tree routings into Γ(m_i) plus the
//! direct edges around `m_i` give every node a 2-step route to `m_i`
//! (Lemma 5).

use ftr_graph::{analysis, Graph, Node, NodeSet};

use crate::RoutingError;

/// A neighborhood set together with the derived structures the circular
/// routings need: the sets Γ_i and a reverse index from nodes to the
/// circle member whose neighborhood contains them.
///
/// # Example
///
/// ```
/// use ftr_core::concentrator::NeighborhoodConcentrator;
/// use ftr_graph::gen;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = gen::cycle(9)?;
/// let c = NeighborhoodConcentrator::from_members(&g, vec![0, 3, 6])?;
/// assert_eq!(c.len(), 3);
/// assert_eq!(c.circle_of(1), Some(0)); // 1 ∈ Γ(m_0) = Γ(0)
/// assert_eq!(c.circle_of(0), None);    // members are outside Γ
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NeighborhoodConcentrator {
    members: Vec<Node>,
    gamma: Vec<NodeSet>,
    circle_index: Vec<Option<u32>>,
}

impl NeighborhoodConcentrator {
    /// Wraps an explicit member list, validating the neighborhood-set
    /// property.
    ///
    /// # Errors
    ///
    /// Returns [`RoutingError::PropertyNotSatisfied`] if the members are
    /// not independent with pairwise disjoint neighborhoods.
    pub fn from_members(g: &Graph, members: Vec<Node>) -> Result<Self, RoutingError> {
        if !analysis::is_neighborhood_set(g, &members) {
            return Err(RoutingError::property(
                "members do not form a neighborhood set (independent with disjoint neighborhoods)",
            ));
        }
        let n = g.node_count();
        let mut circle_index = vec![None; n];
        let mut gamma = Vec::with_capacity(members.len());
        for (i, &m) in members.iter().enumerate() {
            let set = g.neighbor_set(m);
            for x in &set {
                circle_index[x as usize] = Some(i as u32);
            }
            gamma.push(set);
        }
        Ok(NeighborhoodConcentrator {
            members,
            gamma,
            circle_index,
        })
    }

    /// Greedily selects a neighborhood set of at least `min_size`
    /// members, trying several orders (ascending, min-degree-first, and
    /// a few seeded shuffles) and keeping the first that is large
    /// enough. The result is truncated to exactly `min_size` members —
    /// the theorems need no more, and smaller concentrators mean fewer
    /// tree routings.
    ///
    /// # Errors
    ///
    /// Returns [`RoutingError::ConcentratorTooSmall`] reporting the best
    /// size found if no order reaches `min_size`.
    pub fn select(g: &Graph, min_size: usize) -> Result<Self, RoutingError> {
        use analysis::SelectionOrder::{Ascending, MinDegreeFirst, Random};
        let mut best: Vec<Node> = Vec::new();
        for order in [
            MinDegreeFirst,
            Ascending,
            Random(0),
            Random(1),
            Random(2),
            Random(3),
        ] {
            let mut m = analysis::neighborhood_set(g, order);
            if m.len() >= min_size {
                m.truncate(min_size);
                return Self::from_members(g, m);
            }
            if m.len() > best.len() {
                best = m;
            }
        }
        Err(RoutingError::ConcentratorTooSmall {
            needed: min_size,
            found: best.len(),
        })
    }

    /// Number of members `K`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the concentrator has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member list `m_0, ..., m_{K-1}`.
    pub fn members(&self) -> &[Node] {
        &self.members
    }

    /// The neighbor set Γ_i of member `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn gamma(&self, i: usize) -> &NodeSet {
        &self.gamma[i]
    }

    /// The index `i` with `x ∈ Γ_i`, or `None` if `x` is outside every
    /// member neighborhood (members themselves are always outside).
    pub fn circle_of(&self, x: Node) -> Option<usize> {
        self.circle_index
            .get(x as usize)
            .copied()
            .flatten()
            .map(|i| i as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftr_graph::gen;

    #[test]
    fn from_members_validates() {
        let g = gen::cycle(9).unwrap();
        assert!(NeighborhoodConcentrator::from_members(&g, vec![0, 2]).is_err());
        assert!(NeighborhoodConcentrator::from_members(&g, vec![0, 1]).is_err());
        let c = NeighborhoodConcentrator::from_members(&g, vec![0, 3, 6]).unwrap();
        assert_eq!(c.members(), &[0, 3, 6]);
        assert_eq!(c.gamma(0).iter().collect::<Vec<_>>(), vec![1, 8]);
    }

    #[test]
    fn circle_index_round_trips() {
        let g = gen::hypercube(4).unwrap();
        let c = NeighborhoodConcentrator::select(&g, 2).unwrap();
        for (i, &m) in c.members().iter().enumerate() {
            assert_eq!(c.circle_of(m), None);
            for &x in g.neighbors(m) {
                assert_eq!(c.circle_of(x), Some(i));
            }
        }
    }

    #[test]
    fn select_truncates_to_requested_size() {
        let g = gen::cycle(30).unwrap();
        let c = NeighborhoodConcentrator::select(&g, 4).unwrap();
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn select_reports_best_found_on_failure() {
        let g = gen::complete(6).unwrap(); // any two nodes share neighbors
        let err = NeighborhoodConcentrator::select(&g, 2).unwrap_err();
        assert_eq!(
            err,
            RoutingError::ConcentratorTooSmall {
                needed: 2,
                found: 1
            }
        );
    }
}

//! The (d, f)-tolerance verifier: worst-case surviving diameter over
//! fault sets.
//!
//! A routing is *(d, f)-tolerant* when every fault set of size at most
//! `f` leaves a surviving route graph of diameter at most `d`. This
//! module measures the worst case by three strategies:
//!
//! * [`FaultStrategy::Exhaustive`] — every fault set of size `<= f`
//!   (exact; the default in tests and small experiments),
//! * [`FaultStrategy::RandomSample`] — seeded uniform samples of size
//!   exactly `f`,
//! * [`FaultStrategy::Adversarial`] — route-load-guided greedy placement
//!   followed by hill-climbing swaps (finds bad fault sets orders of
//!   magnitude faster than sampling on large graphs; ablation A3
//!   quantifies the gap).
//!
//! Enumeration parallelizes across OS threads with crossbeam's scoped
//! threads.

use std::fmt;

use ftr_graph::{Node, NodeSet};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{RouteTable, ToleranceClaim};

/// How fault sets are enumerated by [`verify_tolerance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStrategy {
    /// Every fault set of size `0..=f`. Exact but combinatorial; meant
    /// for `C(n, f)` up to a few million.
    Exhaustive,
    /// `trials` uniform fault sets of size exactly `f` drawn with the
    /// given seed.
    RandomSample {
        /// Number of fault sets to draw.
        trials: usize,
        /// RNG seed (experiments record it for reproducibility).
        seed: u64,
    },
    /// Greedy placement on the most route-loaded nodes plus
    /// hill-climbing refinement, restarted `restarts` times.
    Adversarial {
        /// Independent restarts (the first is pure greedy, the rest are
        /// randomized).
        restarts: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl fmt::Display for FaultStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultStrategy::Exhaustive => write!(f, "exhaustive"),
            FaultStrategy::RandomSample { trials, seed } => {
                write!(f, "random({trials} trials, seed {seed})")
            }
            FaultStrategy::Adversarial { restarts, seed } => {
                write!(f, "adversarial({restarts} restarts, seed {seed})")
            }
        }
    }
}

/// Result of a tolerance measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToleranceReport {
    /// The fault budget `f` that was exercised.
    pub max_faults: usize,
    /// Worst surviving diameter observed; `None` means some fault set
    /// disconnected the surviving graph (infinite diameter).
    pub worst_diameter: Option<u32>,
    /// A fault set realizing the worst diameter.
    pub worst_faults: Vec<Node>,
    /// Number of fault sets evaluated.
    pub sets_checked: u64,
}

impl ToleranceReport {
    /// Returns `true` if the observed worst case satisfies `claim`
    /// (every checked fault set of size `<= claim.faults` left diameter
    /// `<= claim.diameter`).
    ///
    /// Only meaningful when the report was produced with
    /// `max_faults >= claim.faults`.
    pub fn satisfies(&self, claim: &ToleranceClaim) -> bool {
        match self.worst_diameter {
            Some(d) => d <= claim.diameter,
            None => false,
        }
    }
}

impl fmt::Display for ToleranceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.worst_diameter {
            Some(d) => write!(
                f,
                "worst diameter {d} over {} fault sets (|F| <= {})",
                self.sets_checked, self.max_faults
            ),
            None => write!(
                f,
                "DISCONNECTED by faults {:?} ({} sets checked)",
                self.worst_faults, self.sets_checked
            ),
        }
    }
}

/// Measures the worst surviving diameter of `table` over fault sets of
/// size at most `f`, per `strategy`, using up to `threads` OS threads.
///
/// An observed disconnection (`worst_diameter == None`) dominates any
/// finite diameter.
///
/// # Panics
///
/// Panics if `threads == 0`.
///
/// # Example
///
/// ```
/// use ftr_core::{verify_tolerance, FaultStrategy, KernelRouting};
/// use ftr_graph::gen;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = gen::petersen();
/// let kernel = KernelRouting::build(&g)?;
/// let report = verify_tolerance(kernel.routing(), 2, FaultStrategy::Exhaustive, 2);
/// assert!(report.satisfies(&kernel.claim_theorem_3()));
/// # Ok(())
/// # }
/// ```
pub fn verify_tolerance<T: RouteTable + Sync>(
    table: &T,
    f: usize,
    strategy: FaultStrategy,
    threads: usize,
) -> ToleranceReport {
    assert!(threads > 0, "at least one worker thread is required");
    match strategy {
        FaultStrategy::Exhaustive => exhaustive(table, f, threads),
        FaultStrategy::RandomSample { trials, seed } => random(table, f, trials, seed, threads),
        FaultStrategy::Adversarial { restarts, seed } => adversarial(table, f, restarts, seed),
    }
}

/// Convenience wrapper: verifies a claim exhaustively and returns
/// whether it held, along with the report.
pub fn check_claim<T: RouteTable + Sync>(
    table: &T,
    claim: &ToleranceClaim,
    threads: usize,
) -> (bool, ToleranceReport) {
    let report = verify_tolerance(table, claim.faults, FaultStrategy::Exhaustive, threads);
    let ok = report.satisfies(claim);
    (ok, report)
}

/// Shared worst-case accumulator. Disconnection (None) beats any finite
/// diameter; ties keep the first fault set found.
struct Worst {
    diameter: Option<u32>, // None = not yet measured... see `measured`
    disconnected: bool,
    faults: Vec<Node>,
    sets: u64,
    measured: bool,
}

impl Worst {
    fn new() -> Self {
        Worst {
            diameter: Some(0),
            disconnected: false,
            faults: Vec::new(),
            sets: 0,
            measured: false,
        }
    }

    fn update(&mut self, diameter: Option<u32>, faults: &NodeSet) {
        self.sets += 1;
        let better = match (self.disconnected, diameter) {
            (true, _) => false,
            (false, None) => true,
            (false, Some(d)) => !self.measured || d > self.diameter.unwrap_or(0),
        };
        if better {
            self.diameter = diameter;
            self.disconnected = diameter.is_none();
            self.faults = faults.iter().collect();
        }
        self.measured = true;
    }

    fn merge(&mut self, other: Worst) {
        self.sets += other.sets;
        if !other.measured {
            return;
        }
        let better = match (self.disconnected, other.disconnected) {
            (true, _) => false,
            (false, true) => true,
            (false, false) => {
                !self.measured || other.diameter.unwrap_or(0) > self.diameter.unwrap_or(0)
            }
        };
        if better {
            self.diameter = other.diameter;
            self.disconnected = other.disconnected;
            self.faults = other.faults;
        }
        self.measured = true;
    }

    fn into_report(self, f: usize) -> ToleranceReport {
        ToleranceReport {
            max_faults: f,
            worst_diameter: if self.disconnected { None } else { self.diameter },
            worst_faults: self.faults,
            sets_checked: self.sets,
        }
    }
}

fn evaluate<T: RouteTable>(table: &T, faults: &NodeSet) -> Option<u32> {
    table.surviving(faults).diameter()
}

fn exhaustive<T: RouteTable + Sync>(table: &T, f: usize, threads: usize) -> ToleranceReport {
    let n = table.node_count();
    let f = f.min(n);
    let global = Mutex::new(Worst::new());

    // Evaluate the empty fault set once.
    {
        let empty = NodeSet::new(n);
        let d = evaluate(table, &empty);
        global.lock().update(d, &empty);
    }
    if f == 0 {
        return global.into_inner().into_report(f);
    }

    // Partition work by the first (smallest) fault node; each worker
    // enumerates all subsets of `first+1..n` of size `k-1` on top.
    let first_nodes: Vec<Node> = (0..n as Node).collect();
    let next = Mutex::new(0usize);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|_| {
                let mut local = Worst::new();
                loop {
                    let idx = {
                        let mut guard = next.lock();
                        let i = *guard;
                        *guard += 1;
                        i
                    };
                    if idx >= first_nodes.len() {
                        break;
                    }
                    let first = first_nodes[idx];
                    let mut faults = NodeSet::new(n);
                    faults.insert(first);
                    let d = evaluate(table, &faults);
                    local.update(d, &faults);
                    if f >= 2 {
                        let rest: Vec<Node> = (first + 1..n as Node).collect();
                        enumerate_on_top(table, &mut faults, &rest, 0, f - 1, &mut local);
                    }
                }
                global.lock().merge(local);
            });
        }
    })
    .expect("worker threads do not panic");

    global.into_inner().into_report(f)
}

/// Recursively extends `faults` with members of `pool[start..]`, up to
/// `budget` more nodes, evaluating every intermediate set.
fn enumerate_on_top<T: RouteTable>(
    table: &T,
    faults: &mut NodeSet,
    pool: &[Node],
    start: usize,
    budget: usize,
    worst: &mut Worst,
) {
    if budget == 0 {
        return;
    }
    for i in start..pool.len() {
        faults.insert(pool[i]);
        let d = evaluate(table, faults);
        worst.update(d, faults);
        enumerate_on_top(table, faults, pool, i + 1, budget - 1, worst);
        faults.remove(pool[i]);
    }
}

fn random<T: RouteTable + Sync>(
    table: &T,
    f: usize,
    trials: usize,
    seed: u64,
    threads: usize,
) -> ToleranceReport {
    let n = table.node_count();
    let f = f.min(n);
    let global = Mutex::new(Worst::new());
    let threads = threads.min(trials.max(1));
    crossbeam::thread::scope(|scope| {
        for worker in 0..threads {
            let global = &global;
            scope.spawn(move |_| {
                let mut rng = SmallRng::seed_from_u64(seed ^ (worker as u64).wrapping_mul(0x9e3779b97f4a7c15));
                let share = trials / threads + usize::from(worker < trials % threads);
                let mut local = Worst::new();
                for _ in 0..share {
                    let faults = sample_fault_set(n, f, &mut rng);
                    let d = evaluate(table, &faults);
                    local.update(d, &faults);
                }
                global.lock().merge(local);
            });
        }
    })
    .expect("worker threads do not panic");
    global.into_inner().into_report(f)
}

fn sample_fault_set(n: usize, f: usize, rng: &mut SmallRng) -> NodeSet {
    let mut faults = NodeSet::new(n);
    while faults.len() < f {
        faults.insert(rng.gen_range(0..n) as Node);
    }
    faults
}

fn adversarial<T: RouteTable + Sync>(
    table: &T,
    f: usize,
    restarts: usize,
    seed: u64,
) -> ToleranceReport {
    let n = table.node_count();
    let f = f.min(n);
    let mut worst = Worst::new();
    // Route load: how many surviving-graph arcs each node's failure
    // would erase (computed on the fault-free table).
    let empty = NodeSet::new(n);
    let mut load = vec![0u64; n];
    {
        let baseline = table.surviving(&empty);
        for v in 0..n as Node {
            let mut single = NodeSet::new(n);
            single.insert(v);
            let s = table.surviving(&single);
            load[v as usize] =
                (baseline.digraph().arc_count() - s.digraph().arc_count()) as u64;
        }
    }
    let mut by_load: Vec<Node> = (0..n as Node).collect();
    by_load.sort_by_key(|&v| std::cmp::Reverse(load[v as usize]));

    let mut rng = SmallRng::seed_from_u64(seed);
    for restart in 0..restarts.max(1) {
        let mut faults = if restart == 0 {
            // Pure greedy: the f most loaded nodes.
            NodeSet::from_nodes(n, by_load.iter().take(f).copied())
        } else {
            // Randomized greedy: sample biased toward loaded nodes.
            let mut set = NodeSet::new(n);
            while set.len() < f.min(n) {
                let pick = by_load[rng.gen_range(0..n.min(2 * f + restart)).min(n - 1)];
                set.insert(pick);
            }
            set
        };
        let mut current = evaluate(table, &faults);
        worst.update(current, &faults);
        // Hill climbing: try single-node swaps that worsen the diameter.
        let mut improved = true;
        while improved {
            improved = false;
            let members: Vec<Node> = faults.iter().collect();
            'swap: for &out in &members {
                for inn in 0..n as Node {
                    if faults.contains(inn) {
                        continue;
                    }
                    faults.remove(out);
                    faults.insert(inn);
                    let cand = evaluate(table, &faults);
                    worst.update(cand, &faults);
                    if strictly_worse(current, cand) {
                        current = cand;
                        improved = true;
                        break 'swap;
                    }
                    faults.remove(inn);
                    faults.insert(out);
                }
            }
            if current.is_none() {
                break; // disconnection found: cannot get worse
            }
        }
    }
    worst.into_report(f)
}

/// Is `cand` a strictly worse (larger) surviving diameter than `cur`?
fn strictly_worse(cur: Option<u32>, cand: Option<u32>) -> bool {
    match (cur, cand) {
        (Some(_), None) => true,
        (Some(a), Some(b)) => b > a,
        (None, _) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelRouting, Routing, RoutingKind};
    use ftr_graph::{gen, Path};

    fn ring_routing(n: usize) -> Routing {
        let mut r = Routing::new(n, RoutingKind::Bidirectional);
        for u in 0..n as Node {
            r.insert(Path::edge(u, (u + 1) % n as Node).unwrap()).unwrap();
        }
        r
    }

    #[test]
    fn exhaustive_counts_all_subsets() {
        let r = ring_routing(6);
        let report = verify_tolerance(&r, 2, FaultStrategy::Exhaustive, 2);
        // C(6,0) + C(6,1) + C(6,2) = 1 + 6 + 15
        assert_eq!(report.sets_checked, 22);
    }

    #[test]
    fn exhaustive_zero_budget_checks_only_the_empty_set() {
        let r = ring_routing(6);
        let report = verify_tolerance(&r, 0, FaultStrategy::Exhaustive, 2);
        assert_eq!(report.sets_checked, 1);
        assert_eq!(report.worst_diameter, Some(3), "fault-free C6 diameter");
    }

    #[test]
    fn exhaustive_finds_the_disconnecting_pair() {
        // Ring of 6 with only edge routes: any two non-adjacent faults
        // disconnect it (two faults at ring-distance 2 isolate the node
        // between them; opposite faults split the ring in half).
        let r = ring_routing(6);
        let report = verify_tolerance(&r, 2, FaultStrategy::Exhaustive, 4);
        assert_eq!(report.worst_diameter, None);
        assert_eq!(report.worst_faults.len(), 2);
        let (a, b) = (report.worst_faults[0], report.worst_faults[1]);
        let gap = (b + 6 - a) % 6;
        assert!(gap != 1 && gap != 5, "adjacent faults keep C6 connected");
    }

    #[test]
    fn exhaustive_single_fault_diameter_on_ring() {
        let r = ring_routing(5);
        let report = verify_tolerance(&r, 1, FaultStrategy::Exhaustive, 1);
        // one fault turns C5 into P4: diameter 3
        assert_eq!(report.worst_diameter, Some(3));
        assert_eq!(report.sets_checked, 6);
    }

    #[test]
    fn threads_agree_with_single_thread() {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let a = verify_tolerance(kernel.routing(), 2, FaultStrategy::Exhaustive, 1);
        let b = verify_tolerance(kernel.routing(), 2, FaultStrategy::Exhaustive, 4);
        assert_eq!(a.worst_diameter, b.worst_diameter);
        assert_eq!(a.sets_checked, b.sets_checked);
    }

    #[test]
    fn random_sampling_is_reproducible() {
        let r = ring_routing(8);
        let s = FaultStrategy::RandomSample { trials: 50, seed: 7 };
        let a = verify_tolerance(&r, 2, s, 2);
        let b = verify_tolerance(&r, 2, s, 2);
        assert_eq!(a.worst_diameter, b.worst_diameter);
        assert_eq!(a.sets_checked, 50);
    }

    #[test]
    fn random_never_exceeds_exhaustive() {
        let r = ring_routing(7);
        let ex = verify_tolerance(&r, 2, FaultStrategy::Exhaustive, 2);
        let rs = verify_tolerance(
            &r,
            2,
            FaultStrategy::RandomSample { trials: 30, seed: 3 },
            2,
        );
        let worse = match (ex.worst_diameter, rs.worst_diameter) {
            (None, _) => false,
            (Some(a), Some(b)) => b > a,
            (Some(_), None) => true,
        };
        assert!(!worse, "sampling cannot beat the exhaustive worst case");
    }

    #[test]
    fn adversarial_finds_ring_disconnection() {
        let r = ring_routing(10);
        let report = verify_tolerance(
            &r,
            2,
            FaultStrategy::Adversarial { restarts: 3, seed: 1 },
            1,
        );
        assert_eq!(
            report.worst_diameter, None,
            "hill climbing should cut the bare ring"
        );
    }

    #[test]
    fn claim_checking() {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let (ok, report) = check_claim(kernel.routing(), &kernel.claim_theorem_3(), 2);
        assert!(ok, "{report}");
        // An absurd claim fails.
        let absurd = ToleranceClaim { diameter: 0, faults: 2 };
        let (ok, _) = check_claim(kernel.routing(), &absurd, 2);
        assert!(!ok);
    }

    #[test]
    fn report_display() {
        let r = ring_routing(5);
        let report = verify_tolerance(&r, 1, FaultStrategy::Exhaustive, 1);
        let text = report.to_string();
        assert!(text.contains("worst diameter 3"));
    }
}

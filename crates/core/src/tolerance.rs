//! The (d, f)-tolerance verifier: worst-case surviving diameter over
//! fault sets.
//!
//! A routing is *(d, f)-tolerant* when every fault set of size at most
//! `f` leaves a surviving route graph of diameter at most `d`. This
//! module measures the worst case by three strategies:
//!
//! * [`FaultStrategy::Exhaustive`] — every fault set of size `<= f`
//!   (exact; the default in tests and small experiments),
//! * [`FaultStrategy::RandomSample`] — seeded uniform samples of size
//!   exactly `f`,
//! * [`FaultStrategy::Adversarial`] — route-load-guided greedy placement
//!   followed by hill-climbing swaps (finds bad fault sets orders of
//!   magnitude faster than sampling on large graphs; ablation A3
//!   quantifies the gap).
//!
//! All three strategies are data-parallel reductions (see `par`): each
//! worker folds fault-set evaluations into a private [`Worst`]
//! accumulator and the folds are merged at the end — no shared mutable
//! state, no locks. The exhaustive enumeration and the hill climber
//! evaluate through a [`FaultCursor`], so the compiled engine
//! ([`crate::CompiledRoutes`]) updates per-route kill counts
//! incrementally instead of re-walking routes per fault set.

use std::fmt;

use ftr_graph::{Node, NodeSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::par;
use crate::surviving::FaultCursor;
use crate::{RouteTable, ToleranceClaim};

/// How fault sets are enumerated by [`verify_tolerance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStrategy {
    /// Every fault set of size `0..=f`. Exact but combinatorial; meant
    /// for `C(n, f)` up to a few million.
    Exhaustive,
    /// `trials` uniform fault sets of size exactly `f` drawn with the
    /// given seed.
    RandomSample {
        /// Number of fault sets to draw.
        trials: usize,
        /// RNG seed (experiments record it for reproducibility).
        seed: u64,
    },
    /// Greedy placement on the most route-loaded nodes plus
    /// hill-climbing refinement, restarted `restarts` times.
    Adversarial {
        /// Independent restarts (the first is pure greedy, the rest are
        /// randomized).
        restarts: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl fmt::Display for FaultStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultStrategy::Exhaustive => write!(f, "exhaustive"),
            FaultStrategy::RandomSample { trials, seed } => {
                write!(f, "random({trials} trials, seed {seed})")
            }
            FaultStrategy::Adversarial { restarts, seed } => {
                write!(f, "adversarial({restarts} restarts, seed {seed})")
            }
        }
    }
}

/// Result of a tolerance measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToleranceReport {
    /// The fault budget `f` that was exercised.
    pub max_faults: usize,
    /// Worst surviving diameter observed; `None` means some fault set
    /// disconnected the surviving graph (infinite diameter).
    pub worst_diameter: Option<u32>,
    /// A fault set realizing the worst diameter.
    pub worst_faults: Vec<Node>,
    /// Number of fault sets evaluated.
    pub sets_checked: u64,
}

impl ToleranceReport {
    /// Returns `true` if the observed worst case satisfies `claim`
    /// (every checked fault set of size `<= claim.faults` left diameter
    /// `<= claim.diameter`).
    ///
    /// A report produced with `max_faults < claim.faults` never covers
    /// the claim and answers `false` — a bound cannot be vouched for by
    /// a measurement that exercised a smaller fault budget.
    pub fn satisfies(&self, claim: &ToleranceClaim) -> bool {
        if self.max_faults < claim.faults {
            return false;
        }
        match self.worst_diameter {
            Some(d) => d <= claim.diameter,
            None => false,
        }
    }
}

impl fmt::Display for ToleranceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.worst_diameter {
            Some(d) => write!(
                f,
                "worst diameter {d} over {} fault sets (|F| <= {})",
                self.sets_checked, self.max_faults
            ),
            None => write!(
                f,
                "DISCONNECTED by faults {:?} ({} sets checked)",
                self.worst_faults, self.sets_checked
            ),
        }
    }
}

/// Measures the worst surviving diameter of `table` over fault sets of
/// size at most `f`, per `strategy`, using up to `threads` OS threads.
///
/// An observed disconnection (`worst_diameter == None`) dominates any
/// finite diameter.
///
/// Works with any [`RouteTable`]; compile the table first
/// ([`crate::Compile::compile`]) to run on the bitset engine — same
/// results, about an order of magnitude faster (bench `e16_engine`).
///
/// # Panics
///
/// Panics if `threads == 0`.
///
/// # Example
///
/// ```
/// use ftr_core::{verify_tolerance, FaultStrategy, KernelRouting};
/// use ftr_graph::gen;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = gen::petersen();
/// let kernel = KernelRouting::build(&g)?;
/// let report = verify_tolerance(kernel.routing(), 2, FaultStrategy::Exhaustive, 2);
/// assert!(report.satisfies(&kernel.guarantee_theorem_3().claim()));
/// # Ok(())
/// # }
/// ```
pub fn verify_tolerance<T: RouteTable + Sync>(
    table: &T,
    f: usize,
    strategy: FaultStrategy,
    threads: usize,
) -> ToleranceReport {
    assert!(threads > 0, "at least one worker thread is required");
    match strategy {
        FaultStrategy::Exhaustive => exhaustive(table, f, threads),
        FaultStrategy::RandomSample { trials, seed } => random(table, f, trials, seed, threads),
        FaultStrategy::Adversarial { restarts, seed } => {
            adversarial(table, f, restarts, seed, threads)
        }
    }
}

/// Convenience wrapper: verifies a claim exhaustively and returns
/// whether it held, along with the report.
pub fn check_claim<T: RouteTable + Sync>(
    table: &T,
    claim: &ToleranceClaim,
    threads: usize,
) -> (bool, ToleranceReport) {
    let report = verify_tolerance(table, claim.faults, FaultStrategy::Exhaustive, threads);
    let ok = report.satisfies(claim);
    (ok, report)
}

/// Per-worker worst-case accumulator. Disconnection (None) beats any
/// finite diameter; ties keep the fault set with the smallest
/// enumeration key, so results are identical whatever the thread count
/// or scheduling (each strategy assigns keys in its sequential
/// enumeration order).
struct Worst {
    diameter: Option<u32>, // None = not yet measured... see `measured`
    disconnected: bool,
    faults: Vec<Node>,
    sets: u64,
    measured: bool,
    /// Enumeration key of the current worst set.
    at: u64,
}

impl Worst {
    fn new() -> Self {
        Worst {
            diameter: Some(0),
            disconnected: false,
            faults: Vec::new(),
            sets: 0,
            measured: false,
            at: u64::MAX,
        }
    }

    fn update(&mut self, diameter: Option<u32>, faults: &NodeSet, key: u64) {
        self.sets += 1;
        let better = if !self.measured {
            true
        } else {
            match (self.disconnected, diameter) {
                (true, Some(_)) => false,
                (true, None) => key < self.at,
                (false, None) => true,
                (false, Some(d)) => {
                    let cur = self.diameter.unwrap_or(0);
                    d > cur || (d == cur && key < self.at)
                }
            }
        };
        if better {
            self.diameter = diameter;
            self.disconnected = diameter.is_none();
            self.faults = faults.iter().collect();
            self.at = key;
        }
        self.measured = true;
    }

    fn merge(&mut self, other: Worst) {
        self.sets += other.sets;
        if !other.measured {
            return;
        }
        let better = if !self.measured {
            true
        } else {
            match (self.disconnected, other.disconnected) {
                (true, false) => false,
                (true, true) => other.at < self.at,
                (false, true) => true,
                (false, false) => {
                    let (cur, new) = (self.diameter.unwrap_or(0), other.diameter.unwrap_or(0));
                    new > cur || (new == cur && other.at < self.at)
                }
            }
        };
        if better {
            self.diameter = other.diameter;
            self.disconnected = other.disconnected;
            self.faults = other.faults;
            self.at = other.at;
        }
        self.measured = true;
    }

    fn merge_all(self, others: Vec<Worst>) -> Worst {
        others.into_iter().fold(self, |mut acc, w| {
            acc.merge(w);
            acc
        })
    }

    fn into_report(self, f: usize) -> ToleranceReport {
        ToleranceReport {
            max_faults: f,
            worst_diameter: if self.disconnected {
                None
            } else {
                self.diameter
            },
            worst_faults: self.faults,
            sets_checked: self.sets,
        }
    }
}

fn exhaustive<T: RouteTable + Sync>(table: &T, f: usize, threads: usize) -> ToleranceReport {
    let n = table.node_count();
    let f = f.min(n);
    let mut global = Worst::new();

    // Evaluate the empty fault set once (enumeration key 0).
    let empty = NodeSet::new(n);
    global.update(table.surviving_diameter(&empty), &empty, 0);
    if f == 0 {
        return global.into_report(f);
    }

    // Partition work by the first (smallest) fault node; each worker
    // claims first nodes dynamically and enumerates all subsets of
    // `first+1..n` of size `< f` on top with an incremental cursor.
    // Keys are `(first + 1) << 40 | subtree position`: exactly the
    // sequential enumeration order, so reported worst sets are
    // scheduling-independent.
    let locals = par::map_workers(n, threads, |next| {
        let mut cursor = table.cursor();
        let mut local = Worst::new();
        while let Some(idx) = next() {
            let first = idx as Node;
            let mut key = (first as u64 + 1) << 40;
            cursor.insert(first);
            local.update(cursor.diameter(), cursor.faults(), key);
            if f >= 2 {
                enumerate_on_top(
                    cursor.as_mut(),
                    first + 1,
                    n as Node,
                    f - 1,
                    &mut local,
                    &mut key,
                );
            }
            cursor.remove(first);
        }
        local
    });
    global.merge_all(locals).into_report(f)
}

/// Recursively extends the cursor's fault set with nodes of
/// `from..limit`, up to `budget` more nodes, evaluating every
/// intermediate set. `key` counts evaluations in DFS order.
fn enumerate_on_top(
    cursor: &mut dyn FaultCursor,
    from: Node,
    limit: Node,
    budget: usize,
    worst: &mut Worst,
    key: &mut u64,
) {
    if budget == 0 {
        return;
    }
    for v in from..limit {
        cursor.insert(v);
        *key += 1;
        worst.update(cursor.diameter(), cursor.faults(), *key);
        enumerate_on_top(cursor, v + 1, limit, budget - 1, worst, key);
        cursor.remove(v);
    }
}

fn random<T: RouteTable + Sync>(
    table: &T,
    f: usize,
    trials: usize,
    seed: u64,
    threads: usize,
) -> ToleranceReport {
    let n = table.node_count();
    let f = f.min(n);
    // Every trial is seeded by its own index (not by worker or chunk
    // id), so the drawn fault sets — and the reported worst set, via
    // the trial-index key — are identical whatever the thread count.
    // Trials are drawn and evaluated in chunks through the batched
    // engine path ([`RouteTable::surviving_diameter_batch`]), which
    // amortizes scratch state across the chunk. The per-trial seeds and
    // trial-index keys are untouched, so the draw — and the reported
    // worst set — stay identical to one-at-a-time evaluation.
    const CHUNK: usize = 64;
    let locals = par::map_workers(trials, threads, |next| {
        let mut local = Worst::new();
        let mut ids: Vec<u64> = Vec::with_capacity(CHUNK);
        let mut sets: Vec<NodeSet> = Vec::with_capacity(CHUNK);
        loop {
            ids.clear();
            sets.clear();
            while ids.len() < CHUNK {
                let Some(trial) = next() else { break };
                let mut rng =
                    SmallRng::seed_from_u64(seed ^ (trial as u64).wrapping_mul(0x9e3779b97f4a7c15));
                ids.push(trial as u64);
                sets.push(sample_fault_set(n, f, &mut rng));
            }
            if ids.is_empty() {
                break;
            }
            let diameters = table.surviving_diameter_batch(&sets);
            for ((&trial, faults), diameter) in ids.iter().zip(&sets).zip(diameters) {
                local.update(diameter, faults, trial);
            }
        }
        local
    });
    Worst::new().merge_all(locals).into_report(f)
}

fn sample_fault_set(n: usize, f: usize, rng: &mut SmallRng) -> NodeSet {
    let mut faults = NodeSet::new(n);
    while faults.len() < f {
        faults.insert(rng.gen_range(0..n) as Node);
    }
    faults
}

fn adversarial<T: RouteTable + Sync>(
    table: &T,
    f: usize,
    restarts: usize,
    seed: u64,
    threads: usize,
) -> ToleranceReport {
    let n = table.node_count();
    let f = f.min(n);
    if n == 0 || f == 0 {
        let empty = NodeSet::new(n);
        let mut worst = Worst::new();
        worst.update(table.surviving_diameter(&empty), &empty, 0);
        return worst.into_report(f);
    }

    // Route load: how many surviving-graph arcs each node's failure
    // would erase (computed on the fault-free table, in parallel).
    let baseline_arcs = table.surviving(&NodeSet::new(n)).digraph().arc_count();
    let load_parts = par::map_workers(n, threads, |next| {
        let mut part = Vec::new();
        while let Some(v) = next() {
            let single = NodeSet::from_nodes(n, [v as Node]);
            let arcs = table.surviving(&single).digraph().arc_count();
            part.push((v, (baseline_arcs - arcs) as u64));
        }
        part
    });
    let mut load = vec![0u64; n];
    for (v, l) in load_parts.into_iter().flatten() {
        load[v] = l;
    }
    let mut by_load: Vec<Node> = (0..n as Node).collect();
    by_load.sort_by_key(|&v| std::cmp::Reverse(load[v as usize]));
    let by_load = &by_load;

    // Restarts are independent searches seeded (and key-ordered) by
    // restart index; run them as one more parallel reduction. The
    // `restart << 32 | step` keys make the reported worst set
    // scheduling-independent.
    let locals = par::map_workers(restarts.max(1), threads, |next| {
        let mut local = Worst::new();
        while let Some(restart) = next() {
            let mut rng =
                SmallRng::seed_from_u64(seed ^ (restart as u64).wrapping_mul(0x6c62272e07bb0142));
            let start = if restart == 0 {
                // Pure greedy: the f most loaded nodes.
                NodeSet::from_nodes(n, by_load.iter().take(f).copied())
            } else {
                // Randomized greedy: sample biased toward loaded nodes.
                let mut set = NodeSet::new(n);
                while set.len() < f {
                    let pick = by_load[rng.gen_range(0..n.min(2 * f + restart)).min(n - 1)];
                    set.insert(pick);
                }
                set
            };
            hill_climb(table, &start, &mut local, (restart as u64) << 32);
        }
        local
    });
    Worst::new().merge_all(locals).into_report(f)
}

/// Hill climbing from `start`: try single-node swaps that worsen the
/// diameter, through an incremental cursor (one remove + one insert per
/// candidate swap). `base_key` orders this climb's evaluations.
fn hill_climb<T: RouteTable>(table: &T, start: &NodeSet, worst: &mut Worst, base_key: u64) {
    let n = table.node_count();
    let mut key = base_key;
    let mut cursor = table.cursor();
    for v in start {
        cursor.insert(v);
    }
    let mut current = cursor.diameter();
    worst.update(current, cursor.faults(), key);
    let mut improved = true;
    while improved {
        improved = false;
        let members: Vec<Node> = cursor.faults().iter().collect();
        'swap: for &out in &members {
            for inn in 0..n as Node {
                if cursor.faults().contains(inn) {
                    continue;
                }
                cursor.remove(out);
                cursor.insert(inn);
                let cand = cursor.diameter();
                key += 1;
                worst.update(cand, cursor.faults(), key);
                if strictly_worse(current, cand) {
                    current = cand;
                    improved = true;
                    break 'swap;
                }
                cursor.remove(inn);
                cursor.insert(out);
            }
        }
        if current.is_none() {
            break; // disconnection found: cannot get worse
        }
    }
}

/// Is `cand` a strictly worse (larger) surviving diameter than `cur`?
fn strictly_worse(cur: Option<u32>, cand: Option<u32>) -> bool {
    match (cur, cand) {
        (Some(_), None) => true,
        (Some(a), Some(b)) => b > a,
        (None, _) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compile, KernelRouting, Routing, RoutingKind};
    use ftr_graph::{gen, Path};

    fn ring_routing(n: usize) -> Routing {
        let mut r = Routing::new(n, RoutingKind::Bidirectional);
        for u in 0..n as Node {
            r.insert(Path::edge(u, (u + 1) % n as Node).unwrap())
                .unwrap();
        }
        r
    }

    #[test]
    fn exhaustive_counts_all_subsets() {
        let r = ring_routing(6);
        let report = verify_tolerance(&r, 2, FaultStrategy::Exhaustive, 2);
        // C(6,0) + C(6,1) + C(6,2) = 1 + 6 + 15
        assert_eq!(report.sets_checked, 22);
    }

    #[test]
    fn exhaustive_zero_budget_checks_only_the_empty_set() {
        let r = ring_routing(6);
        let report = verify_tolerance(&r, 0, FaultStrategy::Exhaustive, 2);
        assert_eq!(report.sets_checked, 1);
        assert_eq!(report.worst_diameter, Some(3), "fault-free C6 diameter");
    }

    #[test]
    fn exhaustive_finds_the_disconnecting_pair() {
        // Ring of 6 with only edge routes: any two non-adjacent faults
        // disconnect it (two faults at ring-distance 2 isolate the node
        // between them; opposite faults split the ring in half).
        let r = ring_routing(6);
        let report = verify_tolerance(&r, 2, FaultStrategy::Exhaustive, 4);
        assert_eq!(report.worst_diameter, None);
        assert_eq!(report.worst_faults.len(), 2);
        let (a, b) = (report.worst_faults[0], report.worst_faults[1]);
        let gap = (b + 6 - a) % 6;
        assert!(gap != 1 && gap != 5, "adjacent faults keep C6 connected");
    }

    #[test]
    fn exhaustive_single_fault_diameter_on_ring() {
        let r = ring_routing(5);
        let report = verify_tolerance(&r, 1, FaultStrategy::Exhaustive, 1);
        // one fault turns C5 into P4: diameter 3
        assert_eq!(report.worst_diameter, Some(3));
        assert_eq!(report.sets_checked, 6);
    }

    #[test]
    fn threads_agree_with_single_thread() {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let a = verify_tolerance(kernel.routing(), 2, FaultStrategy::Exhaustive, 1);
        let b = verify_tolerance(kernel.routing(), 2, FaultStrategy::Exhaustive, 4);
        assert_eq!(a.worst_diameter, b.worst_diameter);
        assert_eq!(a.sets_checked, b.sets_checked);
    }

    #[test]
    fn engines_agree_on_every_strategy() {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let engine = kernel.routing().compile();
        for strategy in [
            FaultStrategy::Exhaustive,
            FaultStrategy::RandomSample {
                trials: 40,
                seed: 9,
            },
            FaultStrategy::Adversarial {
                restarts: 3,
                seed: 9,
            },
        ] {
            let slow = verify_tolerance(kernel.routing(), 2, strategy, 2);
            let fast = verify_tolerance(&engine, 2, strategy, 2);
            assert_eq!(slow.worst_diameter, fast.worst_diameter, "{strategy}");
            assert_eq!(slow.sets_checked, fast.sets_checked, "{strategy}");
        }
    }

    #[test]
    fn random_sampling_is_reproducible() {
        let r = ring_routing(8);
        let s = FaultStrategy::RandomSample {
            trials: 50,
            seed: 7,
        };
        let a = verify_tolerance(&r, 2, s, 2);
        let b = verify_tolerance(&r, 2, s, 2);
        assert_eq!(a.worst_diameter, b.worst_diameter);
        assert_eq!(a.sets_checked, 50);
    }

    #[test]
    fn random_thread_count_does_not_change_the_draw() {
        let r = ring_routing(9);
        let s = FaultStrategy::RandomSample {
            trials: 40,
            seed: 11,
        };
        let a = verify_tolerance(&r, 2, s, 1);
        let b = verify_tolerance(&r, 2, s, 4);
        assert_eq!(a.worst_diameter, b.worst_diameter);
        assert_eq!(a.worst_faults, b.worst_faults, "per-trial seeding + keys");
        assert_eq!(a.sets_checked, b.sets_checked);
    }

    #[test]
    fn reported_worst_sets_are_scheduling_independent() {
        // Enumeration keys break worst-set ties deterministically, so
        // every strategy reports the identical witness whatever the
        // thread count (and however work lands on threads).
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let engine = kernel.routing().compile();
        for strategy in [
            FaultStrategy::Exhaustive,
            FaultStrategy::RandomSample {
                trials: 30,
                seed: 5,
            },
            FaultStrategy::Adversarial {
                restarts: 4,
                seed: 5,
            },
        ] {
            let solo = verify_tolerance(&engine, 2, strategy, 1);
            for _ in 0..3 {
                let multi = verify_tolerance(&engine, 2, strategy, 4);
                assert_eq!(solo.worst_diameter, multi.worst_diameter, "{strategy}");
                assert_eq!(solo.worst_faults, multi.worst_faults, "{strategy}");
                assert_eq!(solo.sets_checked, multi.sets_checked, "{strategy}");
            }
        }
    }

    #[test]
    fn random_never_exceeds_exhaustive() {
        let r = ring_routing(7);
        let ex = verify_tolerance(&r, 2, FaultStrategy::Exhaustive, 2);
        let rs = verify_tolerance(
            &r,
            2,
            FaultStrategy::RandomSample {
                trials: 30,
                seed: 3,
            },
            2,
        );
        let worse = match (ex.worst_diameter, rs.worst_diameter) {
            (None, _) => false,
            (Some(a), Some(b)) => b > a,
            (Some(_), None) => true,
        };
        assert!(!worse, "sampling cannot beat the exhaustive worst case");
    }

    #[test]
    fn adversarial_finds_ring_disconnection() {
        let r = ring_routing(10);
        let report = verify_tolerance(
            &r,
            2,
            FaultStrategy::Adversarial {
                restarts: 3,
                seed: 1,
            },
            1,
        );
        assert_eq!(
            report.worst_diameter, None,
            "hill climbing should cut the bare ring"
        );
    }

    #[test]
    fn claim_checking() {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let (ok, report) = check_claim(kernel.routing(), &kernel.guarantee_theorem_3().claim(), 2);
        assert!(ok, "{report}");
        // An absurd claim fails.
        let absurd = ToleranceClaim {
            diameter: 0,
            faults: 2,
        };
        let (ok, _) = check_claim(kernel.routing(), &absurd, 2);
        assert!(!ok);
    }

    #[test]
    fn under_covered_claims_are_rejected() {
        // Regression: a report measured with a smaller fault budget than
        // the claim's used to answer `true` silently.
        let r = ring_routing(8);
        let report = verify_tolerance(&r, 1, FaultStrategy::Exhaustive, 2);
        assert!(report.worst_diameter.is_some());
        let claim_within = ToleranceClaim {
            diameter: 7,
            faults: 1,
        };
        assert!(report.satisfies(&claim_within));
        let claim_beyond = ToleranceClaim {
            diameter: 7,
            faults: 2,
        };
        assert!(
            !report.satisfies(&claim_beyond),
            "a (d, 2) claim cannot be vouched for by an f = 1 report"
        );
    }

    #[test]
    fn report_display() {
        let r = ring_routing(5);
        let report = verify_tolerance(&r, 1, FaultStrategy::Exhaustive, 1);
        let text = report.to_string();
        assert!(text.contains("worst diameter 3"));
    }
}

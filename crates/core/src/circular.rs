//! The circular routing (Section 4, Theorem 10): a bidirectional
//! `(6, t)`-tolerant routing for any `(t+1)`-connected graph with a
//! neighborhood set of size `K >= t+1` (`t` even) or `K >= t+2` (`t`
//! odd).
//!
//! The concentrator members `m_0, ..., m_{K-1}` are arranged in a
//! (conceptual) circle. The components are:
//!
//! * CIRC 1 — every node `x ∉ Γ` (outside all member neighborhoods,
//!   including the members themselves) gets tree routings into *every*
//!   Γ_i;
//! * CIRC 2 — every node `x ∈ Γ_i` gets tree routings into the "forward
//!   half" sets Γ_(i+j) for `1 <= j <= ⌈K/2⌉ − 1` (the range restriction
//!   prevents two conflicting routes between nodes of Γ);
//! * CIRC 3 — direct edge routes between adjacent nodes.
//!
//! Combined with Lemma 5 (a tree routing into Γ(m) plus the edges around
//! `m` give a 2-step surviving route to `m`), any two surviving nodes
//! route through surviving concentrator members within 6 hops.

use ftr_graph::{connectivity, Graph, Node};

use crate::concentrator::NeighborhoodConcentrator;
use crate::kernel::insert_edge_routes;
use crate::par;
use crate::tree::tree_routing;
use crate::{Guarantee, Routing, RoutingError, RoutingKind, TheoremId};

/// A circular routing with its concentrator.
///
/// # Example
///
/// ```
/// use ftr_core::{CircularRouting, RouteTable};
/// use ftr_graph::{gen, NodeSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = gen::harary(3, 18)?; // 3-connected: t = 2 (even), K = t + 1 = 3
/// let circ = CircularRouting::build(&g)?;
/// assert_eq!(circ.concentrator().len(), 3);
/// let s = circ.routing().surviving(&NodeSet::from_nodes(18, [2, 11]));
/// assert!(s.diameter().expect("tolerates 2 faults") <= 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CircularRouting {
    routing: Routing,
    concentrator: NeighborhoodConcentrator,
    t: usize,
}

impl CircularRouting {
    /// Builds the circular routing with the theorem's minimal
    /// concentrator size: `K = t+1` for even `t`, `K = t+2` for odd `t`
    /// (Lemma 9 / Theorem 10).
    ///
    /// # Errors
    ///
    /// * [`RoutingError::InsufficientConnectivity`] if `g` is
    ///   disconnected.
    /// * [`RoutingError::ConcentratorTooSmall`] if no neighborhood set of
    ///   the required size is found.
    pub fn build(g: &Graph) -> Result<Self, RoutingError> {
        let kappa = connectivity::vertex_connectivity(g);
        if kappa == 0 {
            return Err(RoutingError::InsufficientConnectivity {
                needed: 1,
                found: 0,
            });
        }
        let t = kappa - 1;
        let k = if t.is_multiple_of(2) { t + 1 } else { t + 2 };
        Self::build_with_size(g, k)
    }

    /// Builds a circular routing over a concentrator of exactly `k`
    /// members (Lemma 7's `K = 2t+1` variant, or deliberately
    /// undersized concentrators for ablation A1).
    ///
    /// # Errors
    ///
    /// As [`CircularRouting::build`], plus
    /// [`RoutingError::PropertyNotSatisfied`] for `k == 0`.
    pub fn build_with_size(g: &Graph, k: usize) -> Result<Self, RoutingError> {
        let kappa = connectivity::vertex_connectivity(g);
        if kappa == 0 {
            return Err(RoutingError::InsufficientConnectivity {
                needed: 1,
                found: 0,
            });
        }
        if k == 0 {
            return Err(RoutingError::property("concentrator size must be positive"));
        }
        let concentrator = NeighborhoodConcentrator::select(g, k)?;
        let routing = construct(g, &concentrator, kappa)?;
        Ok(CircularRouting {
            routing,
            concentrator,
            t: kappa - 1,
        })
    }

    /// The underlying route table.
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// Consumes the construction, returning the owned route table.
    pub fn into_routing(self) -> Routing {
        self.routing
    }

    /// The concentrator (circle) used.
    pub fn concentrator(&self) -> &NeighborhoodConcentrator {
        &self.concentrator
    }

    /// The number of faults `t` the construction tolerates.
    pub fn tolerated_faults(&self) -> usize {
        self.t
    }

    /// Theorem 10's guarantee: `(6, t)`-tolerance, with the exact
    /// route-count/memory cost of this table.
    pub fn guarantee(&self) -> Guarantee {
        Guarantee {
            scheme: "circular",
            theorem: TheoremId::Theorem10,
            diameter: 6,
            faults: self.t,
            routes: self.routing.route_count(),
            memory_bytes: self.routing.memory_bytes(),
            audited: false,
        }
    }
}

/// Assembles components CIRC 1–3 over the given concentrator.
fn construct(
    g: &Graph,
    conc: &NeighborhoodConcentrator,
    kappa: usize,
) -> Result<Routing, RoutingError> {
    let k = conc.len();
    let half = k.div_ceil(2); // ⌈K/2⌉
    let mut routing = Routing::new(g.node_count(), RoutingKind::Bidirectional);
    // CIRC 3 first so the shortcut rule folds tree-routing edges onto it.
    insert_edge_routes(&mut routing, g)?;
    // CIRC 1 and CIRC 2: every source's tree routings are derived in
    // parallel; insertion is sequential in source order.
    let nodes: Vec<Node> = g.nodes().collect();
    let batches = par::ordered_map(nodes.len(), par::default_threads(), |idx| {
        let x = nodes[idx];
        let mut paths = Vec::new();
        match conc.circle_of(x) {
            // CIRC 1: x outside Γ routes into every Γ_i.
            None => {
                for i in 0..k {
                    paths.extend(tree_routing(g, x, conc.gamma(i), kappa)?);
                }
            }
            // CIRC 2: x ∈ Γ_i routes into the forward half of the circle.
            Some(i) => {
                for j in 1..half {
                    let target = (i + j) % k;
                    paths.extend(tree_routing(g, x, conc.gamma(target), kappa)?);
                }
            }
        }
        Ok::<_, RoutingError>(paths)
    });
    for batch in batches {
        for p in batch? {
            routing.insert(p)?;
        }
    }
    routing.freeze();
    Ok(routing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify_tolerance, FaultStrategy, RouteTable};
    use ftr_graph::{gen, NodeSet};

    #[test]
    fn builds_and_validates_on_harary() {
        let g = gen::harary(3, 18).unwrap();
        let circ = CircularRouting::build(&g).unwrap();
        circ.routing().validate(&g).unwrap();
        assert_eq!(circ.tolerated_faults(), 2);
        assert_eq!(circ.concentrator().len(), 3); // t = 2 (even): K = t + 1
    }

    #[test]
    fn concentrator_size_follows_parity_rule() {
        // κ = 3 -> t = 2 (even) -> K = 3.
        let g = gen::harary(3, 18).unwrap();
        let circ = CircularRouting::build(&g).unwrap();
        assert_eq!(circ.concentrator().len(), 3);
        // κ = 4 -> t = 3 (odd) -> K = 5.
        let g = gen::harary(4, 30).unwrap();
        let circ = CircularRouting::build(&g).unwrap();
        assert_eq!(circ.concentrator().len(), 5);
    }

    #[test]
    fn theorem_10_bound_exhaustive_small() {
        // C9 is 2-connected (t = 1, K = 3): check all fault sets |F| <= 1.
        let g = gen::cycle(9).unwrap();
        let circ = CircularRouting::build(&g).unwrap();
        circ.routing().validate(&g).unwrap();
        let report = verify_tolerance(circ.routing(), 1, FaultStrategy::Exhaustive, 2);
        assert!(report.satisfies(&circ.guarantee().claim()), "{report}");
    }

    #[test]
    fn theorem_10_bound_exhaustive_harary() {
        let g = gen::harary(3, 20).unwrap(); // t = 2
        let circ = CircularRouting::build(&g).unwrap();
        let report = verify_tolerance(circ.routing(), 2, FaultStrategy::Exhaustive, 4);
        assert!(report.satisfies(&circ.guarantee().claim()), "{report}");
    }

    #[test]
    fn no_fault_diameter_finite() {
        // 6x10 torus: ball of radius 2 has 13 nodes, so the greedy set
        // has at least ceil(60/13) = 5 members = t + 2 for t = 3.
        let g = gen::torus(6, 10).unwrap();
        let circ = CircularRouting::build(&g).unwrap();
        let s = circ.routing().surviving(&NodeSet::new(60));
        assert!(s.diameter().is_some());
    }

    #[test]
    fn oversized_concentrator_lemma_7_variant() {
        // K = 2t + 1 with t = 1 on a big cycle.
        let g = gen::cycle(15).unwrap();
        let circ = CircularRouting::build_with_size(&g, 3).unwrap();
        let report = verify_tolerance(circ.routing(), 1, FaultStrategy::Exhaustive, 2);
        assert!(report.satisfies(&circ.guarantee().claim()), "{report}");
    }

    #[test]
    fn dense_graph_lacks_concentrator() {
        let g = gen::complete_bipartite(4, 4).unwrap(); // κ = 4, no 2 nodes at distance 3
        assert!(matches!(
            CircularRouting::build(&g),
            Err(RoutingError::ConcentratorTooSmall { .. })
        ));
    }
}

//! Beyond the fault budget (open problem 3).
//!
//! The paper's guarantees assume `|F| <= t`; its third open problem
//! asks about routings that remain "well behaved" when more faults
//! occur and the network may disconnect: the surviving route graph
//! should keep a small diameter *within each connected component*.
//! This module measures exactly that, and experiment E16 profiles the
//! constructions in the over-budget regime.

use ftr_graph::{Node, INFINITY};

use crate::SurvivingGraph;

/// Per-component analysis of a surviving route graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentProfile {
    /// One entry per weakly-connected component of surviving nodes:
    /// `(component size, internal diameter)`. The diameter is `None`
    /// when some *ordered* pair inside the weak component has no
    /// directed path (possible for unidirectional routings).
    pub components: Vec<(usize, Option<u32>)>,
}

impl ComponentProfile {
    /// Number of components (0 if every node failed).
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Returns `true` if all surviving nodes fall in one component.
    pub fn is_connected(&self) -> bool {
        self.components.len() <= 1
    }

    /// The largest internal diameter over components, or `None` if some
    /// component is internally (directionally) disconnected.
    pub fn max_component_diameter(&self) -> Option<u32> {
        let mut worst = 0;
        for &(_, d) in &self.components {
            worst = worst.max(d?);
        }
        Some(worst)
    }

    /// Size of the largest component (0 if none).
    pub fn largest_component(&self) -> usize {
        self.components.iter().map(|&(s, _)| s).max().unwrap_or(0)
    }
}

/// Computes the per-component profile of a surviving route graph: the
/// open-problem-3 notion of "well behaved under disconnection".
///
/// Components are taken in the *undirected* sense (an arc in either
/// direction joins two nodes); each component's diameter is then the
/// maximum *directed* distance between its ordered pairs.
///
/// # Example
///
/// ```
/// use ftr_core::{beyond, KernelRouting, RouteTable};
/// use ftr_graph::{gen, NodeSet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = gen::cycle(8)?; // 2-connected: budget t = 1
/// let kernel = KernelRouting::build(&g)?;
/// // Two faults — one beyond budget — may split the ring.
/// let s = kernel.routing().surviving(&NodeSet::from_nodes(8, [0, 4]));
/// let profile = beyond::component_profile(&s);
/// assert!(profile.component_count() >= 1);
/// # Ok(())
/// # }
/// ```
pub fn component_profile(surviving: &SurvivingGraph) -> ComponentProfile {
    let digraph = surviving.digraph();
    let faults = surviving.faults();
    let n = digraph.node_count();
    // Build undirected adjacency over surviving nodes.
    let mut undirected: Vec<Vec<Node>> = vec![Vec::new(); n];
    for (u, v) in digraph.arcs() {
        undirected[u as usize].push(v);
        undirected[v as usize].push(u);
    }
    let mut label = vec![usize::MAX; n];
    let mut comps: Vec<Vec<Node>> = Vec::new();
    for start in 0..n as Node {
        if faults.contains(start) || label[start as usize] != usize::MAX {
            continue;
        }
        let id = comps.len();
        let mut stack = vec![start];
        let mut members = Vec::new();
        label[start as usize] = id;
        while let Some(u) = stack.pop() {
            members.push(u);
            for &v in &undirected[u as usize] {
                if label[v as usize] == usize::MAX {
                    label[v as usize] = id;
                    stack.push(v);
                }
            }
        }
        comps.push(members);
    }
    let components = comps
        .into_iter()
        .map(|members| {
            let size = members.len();
            let mut worst = 0;
            let mut connected = true;
            'outer: for &u in &members {
                let dist = digraph.bfs_distances(u, Some(faults));
                for &v in &members {
                    if u == v {
                        continue;
                    }
                    let d = dist[v as usize];
                    if d == INFINITY {
                        connected = false;
                        break 'outer;
                    }
                    worst = worst.max(d);
                }
            }
            (size, connected.then_some(worst))
        })
        .collect();
    ComponentProfile { components }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelRouting, RouteTable, Routing, RoutingKind};
    use ftr_graph::{gen, NodeSet, Path};

    #[test]
    fn within_budget_single_component() {
        let g = gen::petersen();
        let kernel = KernelRouting::build(&g).unwrap();
        let s = kernel.routing().surviving(&NodeSet::from_nodes(10, [1, 6]));
        let p = component_profile(&s);
        assert!(p.is_connected());
        assert_eq!(p.largest_component(), 8);
        assert_eq!(p.max_component_diameter(), s.diameter());
    }

    #[test]
    fn over_budget_ring_splits_into_bounded_pieces() {
        // Edge-only routing on C8: faults {0, 4} split into two paths of
        // 3 nodes each, each with internal diameter 2.
        let mut r = Routing::new(8, RoutingKind::Bidirectional);
        for u in 0..8u32 {
            r.insert(Path::edge(u, (u + 1) % 8).unwrap()).unwrap();
        }
        let s = r.surviving(&NodeSet::from_nodes(8, [0, 4]));
        let p = component_profile(&s);
        assert_eq!(p.component_count(), 2);
        assert_eq!(p.components, vec![(3, Some(2)), (3, Some(2))]);
        assert_eq!(p.max_component_diameter(), Some(2));
        assert!(!p.is_connected());
    }

    #[test]
    fn all_faulty_gives_empty_profile() {
        let mut r = Routing::new(3, RoutingKind::Bidirectional);
        r.insert(Path::edge(0, 1).unwrap()).unwrap();
        let s = r.surviving(&NodeSet::from_nodes(3, [0, 1, 2]));
        let p = component_profile(&s);
        assert_eq!(p.component_count(), 0);
        assert_eq!(p.largest_component(), 0);
        assert_eq!(p.max_component_diameter(), Some(0));
    }

    #[test]
    fn isolated_survivor_is_its_own_component() {
        let mut r = Routing::new(4, RoutingKind::Bidirectional);
        r.insert(Path::edge(0, 1).unwrap()).unwrap();
        // nodes 2 and 3 have no routes at all
        let s = r.surviving(&NodeSet::new(4));
        let p = component_profile(&s);
        assert_eq!(p.component_count(), 3); // {0,1}, {2}, {3}
        assert_eq!(p.largest_component(), 2);
    }

    #[test]
    fn directional_dead_ends_detected() {
        // Unidirectional arc 0 -> 1 only: weakly one component, but 1
        // cannot reach 0, so the internal diameter is None.
        let mut r = Routing::new(2, RoutingKind::Unidirectional);
        r.insert(Path::edge(0, 1).unwrap()).unwrap();
        let s = r.surviving(&NodeSet::new(2));
        let p = component_profile(&s);
        assert_eq!(p.component_count(), 1);
        assert_eq!(p.components[0], (2, None));
        assert_eq!(p.max_component_diameter(), None);
    }
}

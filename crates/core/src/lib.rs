//! Fault tolerant routings for general networks — a full implementation
//! of Peleg & Simons, *On Fault Tolerant Routings in General Networks*
//! (PODC 1986 / Information and Computation 74, 1987).
//!
//! # The model
//!
//! A network is an undirected graph `G` of node-connectivity `t + 1`.
//! A [`Routing`] fixes at most one simple path per ordered node pair;
//! messages travel only along these fixed routes. When a set `F` of
//! nodes fails, the [`SurvivingGraph`] `R(G, ρ)/F` keeps an arc `x → y`
//! iff the route `ρ(x, y)` avoids `F`, and the cost of communication is
//! the number of surviving routes chained — so the *diameter of the
//! surviving graph* is the figure of merit. A routing is
//! *(d, f)-tolerant* ([`ToleranceClaim`]) when every fault set of size
//! at most `f` leaves diameter at most `d`.
//!
//! # The constructions
//!
//! | Construction | Requirement | Bound | Paper |
//! |---|---|---|---|
//! | [`KernelRouting`] | any `(t+1)`-connected graph | `(2t, t)` and `(4, ⌊t/2⌋)` | Thm 3, Thm 4 |
//! | [`CircularRouting`] | neighborhood set of `t+1` / `t+2` nodes | `(6, t)` | Thm 10 |
//! | [`TriCircularRouting`] | neighborhood set of `6t+9` nodes | `(4, t)` | Thm 13 |
//! | [`TriCircularRouting`] (small) | neighborhood set of `3t+3` / `3t+6` nodes | `(5, t)` | Rem 14 |
//! | [`BipolarRouting`] (uni) | two-trees property | `(4, t)` | Thm 20 |
//! | [`BipolarRouting`] (bi) | two-trees property | `(5, t)` | Thm 23 |
//! | [`MultiRouting`] (full) | `t+1` routes per pair | diameter 1 | §6 |
//! | [`MultiRouting`] (concentrator) | `t+1` routes inside `M` | diameter 3 | §6 |
//! | [`AugmentedKernelRouting`] | may add `t(t+1)/2` links | `(3, t)` | §6 |
//! | [`HypercubeRouting`] | hypercubes (bit-fixing baseline) | measured | §1 (Dolev et al.) |
//!
//! Every claimed bound is machine-checkable: [`verify_tolerance`]
//! measures the worst surviving diameter over fault sets exhaustively,
//! by seeded sampling, or adversarially.
//!
//! # The scheme API and the planner
//!
//! Each construction above is also registered behind the uniform
//! [`Scheme`] trait — the paper's menu turned into one interface.
//! [`Scheme::applicability`] answers "can this construction run on this
//! graph, and what would it promise?" *without* building anything; the
//! promise is a [`Guarantee`] machine-encoding the backing theorem
//! ([`TheoremId`]), the tolerated fault count, the surviving-diameter
//! bound and the route/memory cost. [`Scheme::build`] produces a
//! [`BuiltRouting`] bundling the table with that guarantee, the network
//! it routes and the construction's core nodes. The [`SchemeRegistry`]
//! holds all seven schemes; [`SchemeSpec`] (`kernel`, `circular:k=6`,
//! `bipolar:bi`, …) is the shared parseable grammar; precondition
//! failures are one typed [`Inapplicable`] taxonomy with the scheme
//! name attached. On top sits the [`Planner`]: given a
//! [`PlannerRequest`] (fault budget, optional diameter target,
//! single-route / route-count restrictions) it surveys the registry,
//! builds every eligible candidate data-parallel, and ranks by smallest
//! guaranteed diameter, then exact route count, then registry order —
//! deterministic across thread counts. Construction-specific guarantee
//! accessors (`guarantee_theorem_3()`, `CircularRouting::guarantee()`,
//! …) return the same [`Guarantee`] type. A guarantee starts life
//! *advertised* (the theorem's word); the `ftr-audit` crate's
//! branch-and-bound searcher can upgrade it to *audited*
//! ([`Guarantee::audited`]) by certifying the bound over every fault
//! set within budget.
//!
//! # The route-table lifecycle: builder → frozen CSR
//!
//! A [`Routing`] is built in two phases. Constructions call
//! [`Routing::insert`] against a hash-map *builder* — deriving each
//! source's route batch **in parallel** (the `par` module's ordered
//! map; insertion stays sequential and deterministic) — and finish with
//! [`Routing::freeze`], which compacts the table into a pair-indexed
//! **CSR layout** over one flat `u32` node arena: `route(s, d)` becomes
//! a binary search of one contiguous row, [`Routing::routes`] a
//! cache-linear scan in ascending `(src, dst)` order, and the layout is
//! canonical (independent of build order), which is what makes
//! `ftr-serve`'s bulk-arena snapshot format byte-stable. Measured at
//! scale (bench `e17_scale`, `BENCH_scale.json`, single-threaded):
//! the kernel routing of `H(4, 4096)` — 49 100 routes — constructs in
//! 1.8 s, freezes at ~130k routes/s, compiles in 1.1 s, and every
//! sampled 3-fault set keeps the surviving diameter within Theorem 3's
//! bound; the previous experiment ceiling was n = 24.
//!
//! # The verification engine
//!
//! Verification evaluates one routing under combinatorially many fault
//! sets, so the hot path is compiled: [`Compile::compile`] turns any
//! route table into a [`CompiledRoutes`] engine holding one interior
//! fault mask per route (built straight off the frozen arena with zero
//! per-path allocation), an inverted `node → routes` index, and the
//! surviving route graph as an [`ftr_graph::BitMatrix`]. Under the
//! engine, "does `F` kill this route" is a word-level
//! [`ftr_graph::NodeSet::intersects`] scan, single-fault toggles update
//! per-route kill counts incrementally, per-fault-set diameter scans
//! reuse a thread-local scratch matrix, and diameters are measured by
//! bit-parallel BFS — ~7× faster end-to-end than the route-walk path on
//! the `e16_engine` bench (see `BENCH_engine.json`).
//!
//! Callers holding **many** fault sets should prefer the batched entry
//! point: [`RouteTable::surviving_diameter_batch`] evaluates a whole
//! slice of fault sets in one call. The [`CompiledRoutes`] override
//! keeps a single scratch [`ftr_graph::BitMatrix`] and BFS frontier
//! live across the batch instead of re-acquiring them per set, walks
//! only the routes each fault set can touch (via the inverted index),
//! and runs the underlying word loops 4×u64-unrolled — this is the
//! engine the adversarial audit searcher, the `TOLERATE` serve verb and
//! the `e20_hotpath` bench all drive (`BENCH_hotpath.json` records the
//! batch-vs-one-shot ratio). Results are bit-identical to calling
//! [`RouteTable::surviving_diameter`] per set — pinned by proptests —
//! and the trait's default implementation does exactly that loop, so
//! every route table gets the batched signature. The route-walk
//! implementations remain the reference semantics; property tests in
//! `tests/engine_equivalence.rs` and `tests/proptests.rs` pin
//! arc-for-arc agreement between builder, frozen and compiled forms.
//!
//! # Example
//!
//! Build the circular routing on a 3-connected Harary graph and verify
//! Theorem 10's `(6, 2)`-tolerance exhaustively:
//!
//! ```
//! use ftr_core::{CircularRouting, FaultStrategy, verify_tolerance};
//! use ftr_graph::gen;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = gen::harary(3, 18)?;
//! let circ = CircularRouting::build(&g)?;
//! let report = verify_tolerance(circ.routing(), 2, FaultStrategy::Exhaustive, 4);
//! assert!(report.satisfies(&circ.guarantee().claim()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod augment;
pub mod beyond;
mod bipolar;
mod circular;
pub mod concentrator;
mod engine;
mod error;
mod hypercube;
mod kernel;
mod multi;
#[cfg(feature = "obs-counters")]
pub mod obs;
pub mod par;
mod planner;
pub mod properties;
mod routing;
mod scheme;
mod surviving;
mod tolerance;
pub mod tree;
mod tricircular;

pub use augment::AugmentedKernelRouting;
pub use bipolar::BipolarRouting;
pub use circular::CircularRouting;
pub use engine::{Compile, CompiledRoutes, EpochState};
pub use error::{Inapplicable, InapplicableReason, RoutingError};
pub use hypercube::HypercubeRouting;
pub use kernel::KernelRouting;
pub use multi::{
    concentrator_multirouting, full_multirouting, single_tree_multirouting, MultiRouting,
};
pub use planner::{Candidate, CandidateOutcome, Plan, PlanError, Planner, PlannerRequest};
pub use routing::{RouteView, Routing, RoutingKind, RoutingStats};
pub use scheme::{
    AugmentScheme, BipolarScheme, BuiltRouting, BuiltTable, CircularScheme, Guarantee,
    HypercubeScheme, KernelScheme, MultiMode, MultiScheme, Scheme, SchemeParams, SchemeRegistry,
    SchemeSpec, TheoremId, TriCircularScheme, SCHEME_NAMES,
};
pub use surviving::{FaultCursor, RouteTable, SurvivingGraph};
pub use tolerance::{check_claim, verify_tolerance, FaultStrategy, ToleranceReport};
pub use tricircular::{TriCircularRouting, TriCircularVariant};

/// A *(d, f)-tolerance* claim: "every fault set of size at most
/// [`faults`](ToleranceClaim::faults) leaves a surviving route graph of
/// diameter at most [`diameter`](ToleranceClaim::diameter)".
///
/// Each construction exposes the claim its theorem proves; the
/// [`verify_tolerance`] report checks observations against it.
///
/// # Example
///
/// ```
/// use ftr_core::ToleranceClaim;
///
/// let thm10 = ToleranceClaim { diameter: 6, faults: 2 };
/// assert_eq!(thm10.to_string(), "(6, 2)-tolerant");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ToleranceClaim {
    /// Maximum surviving diameter `d`.
    pub diameter: u32,
    /// Maximum fault count `f`.
    pub faults: usize,
}

impl std::fmt::Display for ToleranceClaim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})-tolerant", self.diameter, self.faults)
    }
}

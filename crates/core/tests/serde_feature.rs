//! Compile-time checks that the `serde` feature wires up `Serialize` /
//! `Deserialize` on the routing types (C-SERDE). Run with
//! `cargo test -p ftr-core --features serde`.
#![cfg(feature = "serde")]

use ftr_core::{Routing, RoutingKind};

fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}

#[test]
fn routing_types_implement_serde() {
    assert_serde::<Routing>();
    assert_serde::<RoutingKind>();
}

//! Property-based tests for the routing layer: route-table semantics
//! against a model, surviving-graph definition checks, tree-routing
//! audits and construction bounds on randomized networks.

use std::collections::HashMap;

use ftr_core::tree::{is_tree_routing, tree_routing};
use ftr_core::{
    verify_tolerance, Compile, FaultStrategy, KernelRouting, MultiRouting, Planner, PlannerRequest,
    RouteTable, Routing, RoutingError, RoutingKind, SchemeParams, SchemeRegistry,
};
use ftr_graph::{connectivity, gen, Graph, Node, NodeSet, Path};
use proptest::prelude::*;

// ------------------------------------------------------------ Route table

/// Random simple path over nodes `0..n`.
fn simple_path(n: Node) -> impl Strategy<Value = Path> {
    prop::collection::btree_set(0..n, 2..6).prop_flat_map(|set| {
        let nodes: Vec<Node> = set.into_iter().collect();
        Just(nodes)
            .prop_shuffle()
            .prop_map(|nodes| Path::new(nodes).expect("distinct nodes form a simple path"))
    })
}

proptest! {
    #[test]
    fn routing_matches_hashmap_model_unidirectional(
        paths in prop::collection::vec(simple_path(16), 0..40)
    ) {
        let mut routing = Routing::new(16, RoutingKind::Unidirectional);
        let mut model: HashMap<(Node, Node), Vec<Node>> = HashMap::new();
        for p in paths {
            let key = (p.source(), p.target());
            match model.get(&key) {
                Some(existing) if existing != p.nodes() => {
                    prop_assert_eq!(
                        routing.insert(p),
                        Err(RoutingError::RouteConflict { src: key.0, dst: key.1 })
                    );
                }
                _ => {
                    routing.insert(p.clone()).expect("no conflict");
                    model.insert(key, p.nodes().to_vec());
                }
            }
        }
        prop_assert_eq!(routing.route_count(), model.len());
        for ((s, d), nodes) in &model {
            let view = routing.route(*s, *d).expect("inserted");
            prop_assert_eq!(&view.nodes(), nodes);
        }
    }

    #[test]
    fn bidirectional_reverse_is_always_the_same_path(
        paths in prop::collection::vec(simple_path(16), 0..30)
    ) {
        let mut routing = Routing::new(16, RoutingKind::Bidirectional);
        for p in paths {
            let _ = routing.insert(p); // conflicts allowed; invariant must hold regardless
        }
        for (s, d, view) in routing.routes() {
            let back = routing.route(d, s).expect("bidirectional closure");
            let mut fwd = view.nodes();
            fwd.reverse();
            prop_assert_eq!(back.nodes(), fwd);
        }
    }

    #[test]
    fn surviving_graph_matches_definition(
        paths in prop::collection::vec(simple_path(14), 1..25),
        faults in prop::collection::btree_set(0u32..14, 0..5),
    ) {
        let mut routing = Routing::new(14, RoutingKind::Unidirectional);
        for p in paths {
            let _ = routing.insert(p);
        }
        let fs = NodeSet::from_nodes(14, faults.iter().copied());
        let s = routing.surviving(&fs);
        // definition: arc x -> y iff route exists, both endpoints alive,
        // and no route node faulty
        for x in 0..14u32 {
            for y in 0..14u32 {
                if x == y { continue; }
                let expect = match routing.route(x, y) {
                    Some(view) => {
                        !fs.contains(x) && !fs.contains(y) && !view.is_affected_by(&fs)
                    }
                    None => false,
                };
                prop_assert_eq!(s.has_edge(x, y), expect, "pair ({}, {})", x, y);
            }
        }
        prop_assert_eq!(s.surviving_count(), 14 - fs.len());
    }

    #[test]
    fn multirouting_budget_is_enforced(
        paths in prop::collection::vec(simple_path(12), 0..40),
        budget in 1usize..4,
    ) {
        let mut m = MultiRouting::new(12, RoutingKind::Unidirectional, budget);
        for p in paths {
            let _ = m.insert(p);
        }
        for (_, _, views) in m.route_bundles() {
            prop_assert!(views.len() <= budget);
        }
    }
}

// ------------------------------------------- Frozen CSR vs reference model

/// Builds the same route set twice — once left as a builder, once
/// frozen — plus a plain `HashMap` model, from random paths.
fn build_with_model(
    n: usize,
    kind: RoutingKind,
    paths: &[Path],
) -> (Routing, Routing, HashMap<(Node, Node), Vec<Node>>) {
    let mut routing = Routing::new(n, kind);
    let mut model: HashMap<(Node, Node), Vec<Node>> = HashMap::new();
    for p in paths {
        if routing.insert(p.clone()).is_ok() {
            model.insert((p.source(), p.target()), p.nodes().to_vec());
            if kind == RoutingKind::Bidirectional {
                let mut rev = p.nodes().to_vec();
                rev.reverse();
                model.insert((p.target(), p.source()), rev);
            }
        }
    }
    let mut frozen = routing.clone();
    frozen.freeze();
    (routing, frozen, model)
}

proptest! {
    // A frozen CSR table answers `route`, `route_count` and `routes`
    // identically to the HashMap reference model (and to its own
    // builder state), for both routing kinds.
    #[test]
    fn frozen_csr_matches_hashmap_model(
        paths in prop::collection::vec(simple_path(16), 0..40),
        bidirectional in any::<bool>(),
    ) {
        let kind = if bidirectional { RoutingKind::Bidirectional } else { RoutingKind::Unidirectional };
        let (builder, frozen, model) = build_with_model(16, kind, &paths);
        prop_assert!(frozen.is_frozen());
        prop_assert_eq!(frozen.route_count(), model.len());
        prop_assert_eq!(frozen.route_count(), builder.route_count());
        for x in 0..16u32 {
            for y in 0..16u32 {
                match model.get(&(x, y)) {
                    Some(nodes) => {
                        prop_assert_eq!(&frozen.route(x, y).expect("routed").nodes(), nodes);
                        prop_assert_eq!(&builder.route(x, y).expect("routed").nodes(), nodes);
                    }
                    None => {
                        prop_assert!(frozen.route(x, y).is_none());
                        prop_assert!(builder.route(x, y).is_none());
                    }
                }
            }
        }
        // routes() iterates both states in identical (sorted) order.
        let a: Vec<(Node, Node, Vec<Node>)> =
            builder.routes().map(|(s, d, v)| (s, d, v.nodes())).collect();
        let b: Vec<(Node, Node, Vec<Node>)> =
            frozen.routes().map(|(s, d, v)| (s, d, v.nodes())).collect();
        prop_assert_eq!(a, b);
        prop_assert_eq!(builder.stats(), frozen.stats());
    }

    // Frozen and builder tables produce arc-for-arc identical surviving
    // graphs under every sampled fault set, directly and through the
    // compiled engine.
    #[test]
    fn frozen_csr_surviving_graphs_match(
        paths in prop::collection::vec(simple_path(14), 1..30),
        faults in prop::collection::btree_set(0u32..14, 0..5),
        bidirectional in any::<bool>(),
    ) {
        let kind = if bidirectional { RoutingKind::Bidirectional } else { RoutingKind::Unidirectional };
        let (builder, frozen, _) = build_with_model(14, kind, &paths);
        let fs = NodeSet::from_nodes(14, faults.iter().copied());
        let a = builder.surviving(&fs);
        let b = frozen.surviving(&fs);
        let ea = ftr_core::Compile::compile(&builder).surviving(&fs);
        let eb = ftr_core::Compile::compile(&frozen).surviving(&fs);
        for x in 0..14u32 {
            for y in 0..14u32 {
                if x == y { continue; }
                prop_assert_eq!(a.has_edge(x, y), b.has_edge(x, y), "({}, {})", x, y);
                prop_assert_eq!(a.has_edge(x, y), ea.has_edge(x, y), "engine ({}, {})", x, y);
                prop_assert_eq!(a.has_edge(x, y), eb.has_edge(x, y), "frozen engine ({}, {})", x, y);
            }
        }
        prop_assert_eq!(a.diameter(), b.diameter());
    }

    // Re-inserting every existing route (in either orientation, for
    // bidirectional tables) into a frozen table is idempotent and does
    // not thaw it; genuinely conflicting paths are still rejected.
    #[test]
    fn frozen_reinsert_is_idempotent(
        paths in prop::collection::vec(simple_path(12), 1..25),
        bidirectional in any::<bool>(),
        flip in any::<bool>(),
    ) {
        let kind = if bidirectional { RoutingKind::Bidirectional } else { RoutingKind::Unidirectional };
        let (_, mut frozen, model) = build_with_model(12, kind, &paths);
        let routes = frozen.route_count();
        let arena_before: (Vec<u32>, Vec<Node>) = {
            let (off, arena) = frozen.arena().expect("frozen");
            (off.to_vec(), arena.to_vec())
        };
        for nodes in model.values() {
            let mut nodes = nodes.clone();
            if flip && kind == RoutingKind::Bidirectional {
                nodes.reverse();
            }
            frozen.insert(Path::new(nodes).unwrap()).expect("idempotent");
        }
        prop_assert!(frozen.is_frozen(), "re-inserts must not thaw");
        prop_assert_eq!(frozen.route_count(), routes);
        let (off, arena) = frozen.arena().expect("still frozen");
        prop_assert_eq!(off, &arena_before.0[..], "arena untouched");
        prop_assert_eq!(arena, &arena_before.1[..]);
    }
}

// ------------------------------------------------------------ Tree routing

fn connected_gnp() -> impl Strategy<Value = Graph> {
    (6usize..20, 0u64..100_000, 3u32..8)
        .prop_map(|(n, seed, dens)| gen::gnp(n, dens as f64 / 10.0, seed).expect("valid p"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_routing_output_always_audits_clean(
        g in connected_gnp(),
        picks in prop::collection::btree_set(1u32..20, 1..6),
        k in 1usize..4,
    ) {
        let n = g.node_count();
        let targets = NodeSet::from_nodes(
            n,
            picks.into_iter().filter(|&v| (v as usize) < n),
        );
        if targets.is_empty() {
            return Ok(());
        }
        match tree_routing(&g, 0, &targets, k) {
            Ok(paths) => {
                prop_assert_eq!(paths.len(), k);
                prop_assert!(is_tree_routing(&g, 0, &targets, &paths));
            }
            Err(RoutingError::InsufficientConnectivity { needed, found }) => {
                prop_assert_eq!(needed, k);
                prop_assert!(found < k);
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
        }
    }

    #[test]
    fn lemma_1_holds_for_built_tree_routings(
        g in connected_gnp(),
        faults in prop::collection::btree_set(1u32..20, 0..3),
    ) {
        // Build a tree routing with k = |faults| + 1 paths; if it exists,
        // at least one path must dodge the faults (Lemma 1).
        let n = g.node_count();
        let kappa = connectivity::vertex_connectivity(&g);
        prop_assume!(kappa >= 1);
        let sep = match connectivity::min_separator(&g) {
            Some(s) if !s.is_empty() => s,
            _ => return Ok(()), // complete or disconnected
        };
        prop_assume!(!sep.contains(0));
        let fs = NodeSet::from_nodes(n, faults.into_iter().filter(|&v| (v as usize) < n));
        let k = fs.len() + 1;
        if let Ok(paths) = tree_routing(&g, 0, &sep, k) {
            prop_assert!(
                paths.iter().any(|p| !p.is_affected_by(&fs)),
                "Lemma 1 violated: {} faults killed {} disjoint paths",
                fs.len(),
                paths.len()
            );
        }
    }
}

// ------------------------------------------------------- Construction bounds

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kernel_bound_on_random_harary_graphs(
        k in 2usize..5,
        extra in 2usize..10,
        fault_seed in any::<u64>(),
    ) {
        let n = k + extra + (k * (k + extra)) % 2;
        prop_assume!(n > k && !(k % 2 == 1 && n % 2 == 1));
        let g = gen::harary(k, n).expect("valid");
        let kernel = KernelRouting::build(&g).expect("connected");
        let t = kernel.tolerated_faults();
        prop_assert_eq!(t, k - 1);
        // one random fault set of size t
        let mut faults = NodeSet::new(n);
        let mut x = fault_seed;
        while faults.len() < t {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            faults.insert((x % n as u64) as Node);
        }
        let d = kernel.routing().surviving(&faults).diameter();
        let claim = kernel.guarantee_theorem_3().claim();
        prop_assert!(
            matches!(d, Some(d) if d <= claim.diameter),
            "faults {:?} gave diameter {:?} > {}", faults, d, claim.diameter
        );
    }

    #[test]
    fn kernel_theorem_4_on_random_fault_halves(
        k in 3usize..6,
        extra in 2usize..8,
        fault_seed in any::<u64>(),
    ) {
        let n = k + extra + (k * (k + extra)) % 2;
        prop_assume!(n > k && !(k % 2 == 1 && n % 2 == 1));
        let g = gen::harary(k, n).expect("valid");
        let kernel = KernelRouting::build(&g).expect("connected");
        let f = kernel.tolerated_faults() / 2;
        let mut faults = NodeSet::new(n);
        let mut x = fault_seed | 1;
        while faults.len() < f {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            faults.insert((x % n as u64) as Node);
        }
        let d = kernel.routing().surviving(&faults).diameter();
        prop_assert!(matches!(d, Some(d) if d <= 4), "Theorem 4 violated: {:?}", d);
    }

    #[test]
    fn verifier_strategies_are_consistent(
        k in 2usize..4,
        extra in 2usize..8,
    ) {
        // Sampling and adversarial search can never exceed the
        // exhaustive worst case.
        let n = k + extra + (k * (k + extra)) % 2;
        prop_assume!(n > k && !(k % 2 == 1 && n % 2 == 1));
        let g = gen::harary(k, n).expect("valid");
        let kernel = KernelRouting::build(&g).expect("connected");
        let t = kernel.tolerated_faults();
        let ex = verify_tolerance(kernel.routing(), t, FaultStrategy::Exhaustive, 2);
        for strategy in [
            FaultStrategy::RandomSample { trials: 30, seed: 5 },
            FaultStrategy::Adversarial { restarts: 2, seed: 5 },
        ] {
            let other = verify_tolerance(kernel.routing(), t, strategy, 2);
            let exceeds = match (ex.worst_diameter, other.worst_diameter) {
                (None, _) => false,
                (Some(a), Some(b)) => b > a,
                (Some(_), None) => true,
            };
            prop_assert!(!exceeds, "{strategy:?} beat exhaustive");
        }
    }
}

// ----------------------------------------------------------- Planner honesty

/// Graphs spanning every applicability regime of the scheme registry:
/// Harary (kernel/circular territory), cycles (two-trees, tri-circular
/// at larger n), the Petersen graph, a genuine hypercube and a torus.
fn scheme_suite_graph() -> impl Strategy<Value = Graph> {
    prop_oneof![
        Just(gen::petersen()),
        Just(gen::hypercube(3).expect("valid")),
        Just(gen::torus(3, 4).expect("valid")),
        (3usize..5, 5usize..14).prop_map(|(k, extra)| {
            let n = k + extra + (k * (k + extra)) % 2;
            gen::harary(k, n).expect("valid")
        }),
        (8usize..40).prop_map(|n| gen::cycle(n).expect("valid")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Planner honesty, part 1: every scheme the registry declares
    // applicable must (a) actually build, (b) advertise the same
    // (d, f) claim it offered pre-build, and (c) survive measurement —
    // sampled fault sets through the compiled engine never exceed the
    // advertised surviving-diameter bound.
    #[test]
    fn applicable_schemes_never_violate_their_guarantee(
        g in scheme_suite_graph(),
        seed in any::<u64>(),
    ) {
        let registry = SchemeRegistry::standard();
        let params = SchemeParams::default();
        for scheme in registry.iter() {
            let Ok(offered) = scheme.applicability(&g, &params) else { continue };
            let built = match scheme.build(&g, &params) {
                Ok(b) => b,
                Err(e) => return Err(TestCaseError::fail(format!(
                    "{} declared applicable but failed to build: {e}", scheme.name()
                ))),
            };
            prop_assert_eq!(
                built.guarantee().claim(), offered.claim(),
                "{} advertised a different claim after building", scheme.name()
            );
            let report = built.verify(FaultStrategy::RandomSample { trials: 10, seed }, 2);
            prop_assert!(
                report.satisfies(&built.guarantee().claim()),
                "{} violated its advertised {}: {report}",
                scheme.name(), built.guarantee()
            );
        }
    }

    // Planner honesty, part 2: the ranked winner (scheme, spec and
    // guarantee) is identical across thread counts — candidate builds
    // are deterministic and the ranking consumes them in registry
    // order, so parallelism only changes wall-clock.
    #[test]
    fn planner_winner_is_thread_count_invariant(
        g in scheme_suite_graph(),
        budget in 0usize..4,
        single in any::<bool>(),
    ) {
        let t = connectivity::vertex_connectivity(&g).saturating_sub(1);
        let mut request = PlannerRequest::tolerate(budget.min(t));
        if single {
            request = request.single_routes();
        }
        let base = Planner::new().threads(1).plan(&g, &request);
        for threads in [2, 5] {
            let other = Planner::new().threads(threads).plan(&g, &request);
            match (&base, &other) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.winner.scheme(), b.winner.scheme());
                    prop_assert_eq!(a.winner.spec(), b.winner.spec());
                    prop_assert_eq!(a.winner.guarantee(), b.winner.guarantee());
                    prop_assert_eq!(a.candidates.len(), b.candidates.len());
                }
                (Err(a), Err(b)) => prop_assert_eq!(a.candidates.len(), b.candidates.len()),
                _ => return Err(TestCaseError::fail(format!(
                    "planner outcome differs between 1 and {threads} threads"
                ))),
            }
        }
    }
}

// ------------------------------------------------------- Batched engine
//
// `surviving_diameter_batch` on the compiled engine reuses one scratch
// matrix and touches only the routes through each fault set; these
// tests pin it bit-identical to the one-shot engine path and to the
// legacy route-walk definition, across interleaved batches (scratch
// restoration) and ragged fault sets.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_diameter_matches_one_shot_and_route_walk(
        g in connected_gnp(),
        fault_picks in prop::collection::vec(
            prop::collection::btree_set(0u32..20, 0..5),
            1..10
        ),
    ) {
        prop_assume!(ftr_graph::traversal::is_connected(&g, None));
        let n = g.node_count();
        let kernel = KernelRouting::build(&g).expect("connected");
        let routing = kernel.routing();
        let engine = routing.compile();
        let sets: Vec<NodeSet> = fault_picks
            .iter()
            .map(|picks| {
                NodeSet::from_nodes(n, picks.iter().copied().filter(|&v| (v as usize) < n))
            })
            .collect();

        let batched = engine.surviving_diameter_batch(&sets);
        prop_assert_eq!(batched.len(), sets.len());
        for (faults, &batch_d) in sets.iter().zip(&batched) {
            prop_assert_eq!(batch_d, engine.surviving_diameter(faults), "one-shot engine");
            prop_assert_eq!(
                batch_d,
                routing.surviving(faults).diameter(),
                "route-walk reference"
            );
        }

        // The trait's default batch (used by uncompiled tables) is the
        // one-shot map by construction; pin the engine override to it.
        prop_assert_eq!(batched.clone(), routing.surviving_diameter_batch(&sets));

        // Scratch reuse across batches is stateless: re-running the
        // same batch, and running it element-reversed, changes nothing.
        prop_assert_eq!(batched.clone(), engine.surviving_diameter_batch(&sets));
        let reversed: Vec<NodeSet> = sets.iter().rev().cloned().collect();
        let mut re = engine.surviving_diameter_batch(&reversed);
        re.reverse();
        prop_assert_eq!(batched, re);
    }
}

//! Engine equivalence: the bitset-compiled engine must produce
//! surviving route graphs **arc-for-arc identical** to the legacy
//! route-walk path — same arcs, same diameters, same incremental-cursor
//! evaluations — on random routings × random fault sets, for both
//! [`Routing`] and [`MultiRouting`].
//!
//! The route-walk implementation is the reference semantics of the
//! paper's `R(G, ρ)/F`; these properties are what license every
//! experiment and bench to run on the compiled path.

use ftr_core::{Compile, MultiRouting, RouteTable, Routing, RoutingKind};
use ftr_graph::{Node, NodeSet, Path};
use proptest::prelude::*;

const N: Node = 14;

/// Random simple path over nodes `0..n`.
fn simple_path(n: Node) -> impl Strategy<Value = Path> {
    prop::collection::btree_set(0..n, 2..6).prop_flat_map(|set| {
        let nodes: Vec<Node> = set.into_iter().collect();
        Just(nodes)
            .prop_shuffle()
            .prop_map(|nodes| Path::new(nodes).expect("distinct nodes form a simple path"))
    })
}

fn routing_kind() -> impl Strategy<Value = RoutingKind> {
    prop_oneof![
        Just(RoutingKind::Unidirectional),
        Just(RoutingKind::Bidirectional),
    ]
}

/// A random (possibly sparse, possibly conflicted-and-skipped) routing.
fn random_routing() -> impl Strategy<Value = Routing> {
    (routing_kind(), prop::collection::vec(simple_path(N), 0..30)).prop_map(|(kind, paths)| {
        let mut r = Routing::new(N as usize, kind);
        for p in paths {
            let _ = r.insert(p); // conflicts skipped: any table is fair game
        }
        r
    })
}

/// A random multirouting with a random parallel budget.
fn random_multirouting() -> impl Strategy<Value = MultiRouting> {
    (
        routing_kind(),
        1usize..4,
        prop::collection::vec(simple_path(N), 0..40),
    )
        .prop_map(|(kind, budget, paths)| {
            let mut m = MultiRouting::new(N as usize, kind, budget);
            for p in paths {
                let _ = m.insert(p); // over-budget inserts skipped
            }
            m
        })
}

fn random_faults() -> impl Strategy<Value = NodeSet> {
    prop::collection::btree_set(0..N, 0..6)
        .prop_map(|faults| NodeSet::from_nodes(N as usize, faults))
}

/// Arc-for-arc and diameter agreement between the two `surviving`
/// implementations, plus the mask-based `surviving_diameter` shortcut.
fn assert_equivalent<T: Compile>(table: &T, faults: &NodeSet) -> Result<(), TestCaseError> {
    let engine = table.compile();
    let reference = table.surviving(faults);
    let compiled = engine.surviving(faults);
    for x in 0..N {
        for y in 0..N {
            prop_assert_eq!(
                reference.has_edge(x, y),
                compiled.has_edge(x, y),
                "arc ({}, {}) under faults {:?}",
                x,
                y,
                faults
            );
        }
    }
    prop_assert_eq!(reference.surviving_count(), compiled.surviving_count());
    prop_assert_eq!(reference.diameter(), compiled.diameter());
    prop_assert_eq!(table.surviving_diameter(faults), reference.diameter());
    prop_assert_eq!(engine.surviving_diameter(faults), reference.diameter());
    Ok(())
}

/// The incremental cursor must agree with from-scratch evaluation at
/// every step of an insert-then-remove walk.
fn assert_cursor_equivalent<T: Compile>(table: &T, faults: &NodeSet) -> Result<(), TestCaseError> {
    let engine = table.compile();
    let mut cursor = engine.cursor();
    let members: Vec<Node> = faults.iter().collect();
    let mut partial = NodeSet::new(N as usize);
    for &v in &members {
        cursor.insert(v);
        partial.insert(v);
        prop_assert_eq!(
            cursor.diameter(),
            table.surviving_diameter(&partial),
            "insert walk at {:?}",
            partial
        );
    }
    for &v in members.iter().rev() {
        cursor.remove(v);
        partial.remove(v);
        prop_assert_eq!(
            cursor.diameter(),
            table.surviving_diameter(&partial),
            "remove walk at {:?}",
            partial
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn routing_surviving_graphs_are_identical(
        routing in random_routing(),
        faults in random_faults(),
    ) {
        assert_equivalent(&routing, &faults)?;
    }

    #[test]
    fn multirouting_surviving_graphs_are_identical(
        multi in random_multirouting(),
        faults in random_faults(),
    ) {
        assert_equivalent(&multi, &faults)?;
    }

    #[test]
    fn routing_cursor_matches_scratch_evaluation(
        routing in random_routing(),
        faults in random_faults(),
    ) {
        assert_cursor_equivalent(&routing, &faults)?;
    }

    #[test]
    fn multirouting_cursor_matches_scratch_evaluation(
        multi in random_multirouting(),
        faults in random_faults(),
    ) {
        assert_cursor_equivalent(&multi, &faults)?;
    }

    #[test]
    fn exhaustive_reports_agree_end_to_end(
        routing in random_routing(),
    ) {
        let engine = routing.compile();
        let slow = ftr_core::verify_tolerance(
            &routing, 2, ftr_core::FaultStrategy::Exhaustive, 2);
        let fast = ftr_core::verify_tolerance(
            &engine, 2, ftr_core::FaultStrategy::Exhaustive, 2);
        prop_assert_eq!(slow.worst_diameter, fast.worst_diameter);
        prop_assert_eq!(slow.sets_checked, fast.sets_checked);
    }
}

//! Compile-time checks that the `serde` feature wires up `Serialize` /
//! `Deserialize` on the data-structure types (C-SERDE). Run with
//! `cargo test -p ftr-graph --features serde`.
#![cfg(feature = "serde")]

use ftr_graph::{DiGraph, Graph, NodeSet, Path};

fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}

#[test]
fn graph_types_implement_serde() {
    assert_serde::<Graph>();
    assert_serde::<DiGraph>();
    assert_serde::<NodeSet>();
    assert_serde::<Path>();
}

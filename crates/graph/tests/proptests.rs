//! Property-based tests for the graph substrate: data-structure models,
//! metric axioms, Menger duality and analysis invariants on randomized
//! inputs.

use std::collections::BTreeSet;

use ftr_graph::analysis::{self, SelectionOrder};
use ftr_graph::{connectivity, flow, gen, io, traversal, Graph, Node, NodeSet, Path, INFINITY};
use proptest::prelude::*;

// ---------------------------------------------------------------- NodeSet

/// Operations for the NodeSet-vs-BTreeSet model test.
#[derive(Debug, Clone)]
enum SetOp {
    Insert(u16),
    Remove(u16),
    Clear,
}

fn set_op(capacity: u16) -> impl Strategy<Value = SetOp> {
    prop_oneof![
        4 => (0..capacity).prop_map(SetOp::Insert),
        2 => (0..capacity).prop_map(SetOp::Remove),
        1 => Just(SetOp::Clear),
    ]
}

proptest! {
    #[test]
    fn nodeset_matches_btreeset_model(
        ops in prop::collection::vec(set_op(128), 0..200)
    ) {
        let mut set = NodeSet::new(128);
        let mut model = BTreeSet::new();
        for op in ops {
            match op {
                SetOp::Insert(v) => {
                    prop_assert_eq!(set.insert(v as Node), model.insert(v as Node));
                }
                SetOp::Remove(v) => {
                    prop_assert_eq!(set.remove(v as Node), model.remove(&(v as Node)));
                }
                SetOp::Clear => {
                    set.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(set.len(), model.len());
        }
        let elems: Vec<Node> = set.iter().collect();
        let model_elems: Vec<Node> = model.into_iter().collect();
        prop_assert_eq!(elems, model_elems);
    }

    #[test]
    fn nodeset_algebra_matches_model(
        a in prop::collection::btree_set(0u32..96, 0..40),
        b in prop::collection::btree_set(0u32..96, 0..40),
    ) {
        let sa = NodeSet::from_nodes(96, a.iter().copied());
        let sb = NodeSet::from_nodes(96, b.iter().copied());

        let mut union = sa.clone();
        union.union_with(&sb);
        let expect: Vec<Node> = a.union(&b).copied().collect();
        prop_assert_eq!(union.iter().collect::<Vec<_>>(), expect);

        let mut inter = sa.clone();
        inter.intersect_with(&sb);
        let expect: Vec<Node> = a.intersection(&b).copied().collect();
        prop_assert_eq!(inter.iter().collect::<Vec<_>>(), expect);

        let mut diff = sa.clone();
        diff.difference_with(&sb);
        let expect: Vec<Node> = a.difference(&b).copied().collect();
        prop_assert_eq!(diff.iter().collect::<Vec<_>>(), expect);

        prop_assert_eq!(sa.is_disjoint(&sb), a.is_disjoint(&b));
        prop_assert_eq!(sa.is_subset(&sb), a.is_subset(&b));
    }
}

// ------------------------------------------- Unrolled bitset kernels
//
// The word loops behind `union_with`/`intersect_with`/`difference_with`
// and `words_intersect` are 4×u64-unrolled with a scalar remainder;
// these tests pin them to the set model at capacities chosen to
// exercise every remainder shape (0–3 ragged tail words, plus a
// non-multiple-of-64 final word).

/// Capacities covering each `chunks_exact(4)` remainder length and
/// ragged final words.
const RAGGED_CAPACITIES: [usize; 10] = [1, 63, 64, 65, 129, 192, 257, 300, 448, 511];

fn ragged_set_pair() -> impl Strategy<Value = (usize, BTreeSet<u32>, BTreeSet<u32>)> {
    (0..RAGGED_CAPACITIES.len()).prop_flat_map(|i| {
        let cap = RAGGED_CAPACITIES[i];
        (
            Just(cap),
            prop::collection::btree_set(0..cap as u32, 0..cap.min(96)),
            prop::collection::btree_set(0..cap as u32, 0..cap.min(96)),
        )
    })
}

/// No bit at or above `capacity` may survive a kernel — stray tail bits
/// would corrupt later word-level operations.
fn assert_tail_clean(set: &NodeSet) -> Result<(), TestCaseError> {
    let tail = set.capacity() % 64;
    if tail != 0 {
        let last = *set.words().last().expect("capacity > 0 has words");
        prop_assert_eq!(last & !((1u64 << tail) - 1), 0, "stray bits past capacity");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn unrolled_set_algebra_matches_model_at_ragged_capacities(
        input in ragged_set_pair()
    ) {
        let (cap, a, b) = input;
        let sa = NodeSet::from_nodes(cap, a.iter().copied());
        let sb = NodeSet::from_nodes(cap, b.iter().copied());

        let mut union = sa.clone();
        union.union_with(&sb);
        let expect: Vec<Node> = a.union(&b).copied().collect();
        prop_assert_eq!(union.len(), expect.len(), "fused popcount drifted");
        prop_assert_eq!(union.iter().collect::<Vec<_>>(), expect);
        assert_tail_clean(&union)?;

        let mut inter = sa.clone();
        inter.intersect_with(&sb);
        let expect: Vec<Node> = a.intersection(&b).copied().collect();
        prop_assert_eq!(inter.len(), expect.len(), "fused popcount drifted");
        prop_assert_eq!(inter.iter().collect::<Vec<_>>(), expect);
        assert_tail_clean(&inter)?;

        let mut diff = sa.clone();
        diff.difference_with(&sb);
        let expect: Vec<Node> = a.difference(&b).copied().collect();
        prop_assert_eq!(diff.len(), expect.len(), "fused popcount drifted");
        prop_assert_eq!(diff.iter().collect::<Vec<_>>(), expect);
        assert_tail_clean(&diff)?;

        prop_assert_eq!(
            ftr_graph::words_intersect(sa.words(), sb.words()),
            !a.is_disjoint(&b)
        );
        prop_assert_eq!(sa.intersects(&sb), !a.is_disjoint(&b));
    }

    #[test]
    fn words_intersect_handles_length_mismatch(
        input in ragged_set_pair(),
        shorter in 0usize..4,
    ) {
        // Callers pass fault-set word slices shorter than the matrix
        // stride; only the common prefix may decide the answer.
        let (cap, a, b) = input;
        let sa = NodeSet::from_nodes(cap, a.iter().copied());
        let sb = NodeSet::from_nodes(cap, b.iter().copied());
        let cut = sb.words().len().saturating_sub(shorter).max(1);
        let prefix = &sb.words()[..cut];
        let expect = a.iter().any(|&v| (v as usize) < cut * 64 && b.contains(&v));
        prop_assert_eq!(ftr_graph::words_intersect(sa.words(), prefix), expect);
        prop_assert_eq!(ftr_graph::words_intersect(prefix, sa.words()), expect);
    }
}

// ---------------------------------------------- BitMatrix BFS kernels

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitmatrix_diameter_matches_graph_bfs(
        g in small_gnp(),
        picks in prop::collection::btree_set(0u32..24, 0..6),
    ) {
        use ftr_graph::{BfsScratch, BitMatrix};
        let n = g.node_count();
        let mut bm = BitMatrix::new(n);
        for (u, v) in g.edges() {
            bm.set(u, v);
            bm.set(v, u);
        }
        let avoid = NodeSet::from_nodes(n, picks.into_iter().filter(|&v| (v as usize) < n));
        prop_assume!(avoid.len() + 2 <= n);

        // The unrolled frontier BFS against the graph-level reference.
        prop_assert_eq!(bm.diameter(None), traversal::diameter(&g, None));
        prop_assert_eq!(bm.diameter(Some(&avoid)), traversal::diameter(&g, Some(&avoid)));

        // Caller-owned scratch is identical to the thread-local path,
        // including when the scratch is reused across differently-sized
        // calls.
        let mut scratch = BfsScratch::new();
        prop_assert_eq!(bm.diameter_with(Some(&avoid), &mut scratch), bm.diameter(Some(&avoid)));
        prop_assert_eq!(bm.diameter_with(None, &mut scratch), bm.diameter(None));
        for src in 0..n as Node {
            if avoid.contains(src) {
                continue;
            }
            prop_assert_eq!(
                bm.eccentricity_with(src, Some(&avoid), &mut scratch),
                bm.masked_eccentricity(src, Some(&avoid))
            );
        }
    }
}

// ------------------------------------------------------------------- Path

proptest! {
    #[test]
    fn path_reversal_is_involutive(nodes in prop::collection::vec(0u32..64, 1..12)) {
        match Path::new(nodes.clone()) {
            Ok(p) => {
                let distinct: BTreeSet<_> = nodes.iter().collect();
                prop_assert_eq!(distinct.len(), nodes.len(), "accepted paths are simple");
                prop_assert_eq!(p.reversed().reversed(), p.clone());
                prop_assert_eq!(p.len() + 1, p.nodes().len());
                prop_assert_eq!(p.interior().count(), p.nodes().len().saturating_sub(2));
            }
            Err(_) => {
                let distinct: BTreeSet<_> = nodes.iter().collect();
                prop_assert!(distinct.len() < nodes.len(), "rejections are repeats");
            }
        }
    }

    #[test]
    fn path_affected_iff_some_node_faulty(
        nodes in prop::collection::btree_set(0u32..40, 2..8),
        faults in prop::collection::btree_set(0u32..40, 0..6),
    ) {
        let p = Path::new(nodes.iter().copied().collect()).expect("distinct nodes");
        let fs = NodeSet::from_nodes(40, faults.iter().copied());
        let expect = nodes.iter().any(|v| faults.contains(v));
        prop_assert_eq!(p.is_affected_by(&fs), expect);
    }
}

// ------------------------------------------------------------------ Graph

/// A random graph strategy: `n` nodes, G(n, p)-style with a seed.
fn small_gnp() -> impl Strategy<Value = Graph> {
    (4usize..24, 0u64..1_000_000, 1u32..9)
        .prop_map(|(n, seed, dens)| gen::gnp(n, dens as f64 / 10.0, seed).expect("valid p"))
}

proptest! {
    #[test]
    fn graph_handshake_lemma(g in small_gnp()) {
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        prop_assert_eq!(g.edges().count(), g.edge_count());
    }

    #[test]
    fn graph_adjacency_is_symmetric(g in small_gnp()) {
        for (u, v) in g.edges() {
            prop_assert!(g.has_edge(u, v) && g.has_edge(v, u));
            prop_assert!(g.neighbors(u).contains(&v));
            prop_assert!(g.neighbors(v).contains(&u));
        }
    }

    #[test]
    fn bfs_distances_are_a_metric(g in small_gnp()) {
        let n = g.node_count();
        let dist: Vec<Vec<u32>> =
            (0..n as Node).map(|v| traversal::bfs_distances(&g, v, None)).collect();
        for u in 0..n {
            prop_assert_eq!(dist[u][u], 0);
            for v in 0..n {
                // symmetry
                prop_assert_eq!(dist[u][v], dist[v][u]);
                // triangle inequality through any w (with INFINITY care)
                for w in 0..n {
                    if dist[u][w] != INFINITY && dist[w][v] != INFINITY {
                        prop_assert!(dist[u][v] <= dist[u][w] + dist[w][v]);
                    }
                }
            }
        }
    }

    #[test]
    fn avoid_overlay_equals_induced_subgraph(
        g in small_gnp(),
        picks in prop::collection::btree_set(0u32..24, 0..6),
    ) {
        let n = g.node_count();
        let removed = NodeSet::from_nodes(
            n,
            picks.into_iter().filter(|&v| (v as usize) < n),
        );
        let (induced, new_to_old) = g.remove_nodes(&removed);
        // distances computed with the fault overlay must equal distances
        // in the materialized induced subgraph
        for (new_u, &old_u) in new_to_old.iter().enumerate() {
            let overlay = traversal::bfs_distances(&g, old_u, Some(&removed));
            let direct = traversal::bfs_distances(&induced, new_u as Node, None);
            for (new_v, &old_v) in new_to_old.iter().enumerate() {
                prop_assert_eq!(direct[new_v], overlay[old_v as usize]);
            }
        }
    }

    #[test]
    fn shortest_path_matches_distance(g in small_gnp()) {
        let dist = traversal::bfs_distances(&g, 0, None);
        for v in g.nodes() {
            match traversal::shortest_path(&g, 0, v, None) {
                Some(p) => {
                    prop_assert_eq!(p.len() as u32, dist[v as usize]);
                    p.validate_in(&g).expect("shortest paths are valid");
                }
                None => prop_assert_eq!(dist[v as usize], INFINITY),
            }
        }
    }

    #[test]
    fn components_partition_reachability(g in small_gnp()) {
        let (count, labels) = traversal::connected_components(&g, None);
        prop_assert!(labels.iter().all(|&l| (l as usize) < count));
        for u in g.nodes() {
            let dist = traversal::bfs_distances(&g, u, None);
            for v in g.nodes() {
                let same = labels[u as usize] == labels[v as usize];
                prop_assert_eq!(same, dist[v as usize] != INFINITY);
            }
        }
    }
}

// ----------------------------------------------------------- Flow / Menger

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn menger_duality_on_random_graphs(g in small_gnp()) {
        let n = g.node_count() as Node;
        // probe a handful of non-adjacent pairs
        let pairs = [(0, n - 1), (1, n - 2), (0, n / 2)];
        for &(s, t) in &pairs {
            if s == t || g.has_edge(s, t) {
                continue;
            }
            let k = flow::local_vertex_connectivity(&g, s, t, None).expect("valid pair");
            let paths = flow::vertex_disjoint_st_paths(&g, s, t, None).expect("valid pair");
            let cut = flow::min_st_vertex_cut(&g, s, t).expect("non-adjacent");
            // Menger: max disjoint paths == min vertex cut
            prop_assert_eq!(paths.len(), k);
            prop_assert_eq!(cut.len(), k);
            // the cut separates
            if k > 0 {
                prop_assert_eq!(traversal::distance(&g, s, t, Some(&cut)), INFINITY);
            }
            // paths are internally disjoint and valid
            let mut seen = NodeSet::new(g.node_count());
            for p in &paths {
                p.validate_in(&g).expect("flow paths are graph paths");
                prop_assert_eq!(p.source(), s);
                prop_assert_eq!(p.target(), t);
                for v in p.interior() {
                    prop_assert!(seen.insert(v), "interior reused");
                    prop_assert!(!cut.contains(v) || cut.len() == k, "sanity");
                }
            }
        }
    }

    #[test]
    fn paths_to_set_are_disjoint_and_truncated(
        g in small_gnp(),
        picks in prop::collection::btree_set(0u32..24, 1..6),
    ) {
        let n = g.node_count();
        let targets = NodeSet::from_nodes(
            n,
            picks.into_iter().filter(|&v| (v as usize) < n && v != 0),
        );
        if targets.is_empty() {
            return Ok(());
        }
        let paths = flow::vertex_disjoint_paths_to_set(&g, 0, &targets, None)
            .expect("validated inputs");
        let mut seen = NodeSet::new(n);
        let mut endpoints = NodeSet::new(n);
        for p in &paths {
            p.validate_in(&g).expect("valid path");
            prop_assert_eq!(p.source(), 0);
            prop_assert!(targets.contains(p.target()));
            prop_assert!(endpoints.insert(p.target()), "distinct endpoints");
            prop_assert!(p.interior().all(|v| !targets.contains(v)), "truncated");
            for v in p.nodes().iter().copied().filter(|&v| v != 0) {
                prop_assert!(seen.insert(v), "node reused across paths");
            }
        }
    }

    #[test]
    fn global_connectivity_matches_brute_force(
        n in 4usize..9,
        seed in 0u64..10_000,
        dens in 2u32..9,
    ) {
        let g = gen::gnp(n, dens as f64 / 10.0, seed).expect("valid p");
        let fast = connectivity::vertex_connectivity(&g);
        let brute = brute_connectivity(&g);
        prop_assert_eq!(fast, brute);
        // threshold checks agree with the exact value
        prop_assert!(connectivity::is_k_connected(&g, fast));
        prop_assert!(!connectivity::is_k_connected(&g, fast + 1));
    }
}

fn brute_connectivity(g: &Graph) -> usize {
    let n = g.node_count();
    if g.is_complete() {
        return n.saturating_sub(1);
    }
    if !traversal::is_connected(g, None) {
        return 0;
    }
    let mut best = n - 1;
    for mask in 0u32..(1 << n) {
        let size = mask.count_ones() as usize;
        if size >= best {
            continue;
        }
        let set = NodeSet::from_nodes(n, (0..n as Node).filter(|&v| mask & (1 << v) != 0));
        if connectivity::is_separator(g, &set) {
            best = size;
        }
    }
    best
}

// -------------------------------------------------------------- Analysis

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_neighborhood_sets_are_valid_and_large_enough(
        g in small_gnp(),
        seed in 0u64..1000,
    ) {
        for order in [
            SelectionOrder::Ascending,
            SelectionOrder::MinDegreeFirst,
            SelectionOrder::Random(seed),
        ] {
            let m = analysis::neighborhood_set(&g, order);
            prop_assert!(analysis::is_neighborhood_set(&g, &m));
            let d = g.max_degree();
            prop_assert!(m.len() >= g.node_count().div_ceil(d * d + 1));
            // maximality: no node outside can be added
            for v in g.nodes() {
                if m.contains(&v) {
                    continue;
                }
                let mut extended = m.clone();
                extended.push(v);
                prop_assert!(
                    !analysis::is_neighborhood_set(&g, &extended),
                    "greedy result must be maximal (node {} fits)", v
                );
            }
        }
    }

    #[test]
    fn two_trees_pair_is_symmetric(g in small_gnp()) {
        let n = g.node_count() as Node;
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(
                    analysis::is_two_trees_pair(&g, a, b),
                    analysis::is_two_trees_pair(&g, b, a)
                );
            }
        }
    }

    #[test]
    fn finder_result_always_validates(g in small_gnp()) {
        if let Some((r1, r2)) = analysis::find_two_trees_roots(&g) {
            prop_assert!(analysis::is_two_trees_pair(&g, r1, r2));
            prop_assert!(!analysis::on_short_cycle(&g, r1));
            prop_assert!(!analysis::on_short_cycle(&g, r2));
        }
    }

    #[test]
    fn girth_is_min_over_node_cycles(g in small_gnp()) {
        let per_node: Vec<Option<u32>> = g
            .nodes()
            .map(|v| analysis::shortest_cycle_through(&g, v))
            .collect();
        let expect = per_node.iter().flatten().min().copied();
        prop_assert_eq!(analysis::girth(&g), expect);
    }
}

// ------------------------------------------------------------- graph6 I/O
//
// The `ftr-serve` snapshot loader trusts this parser with on-disk input,
// so the round trip and the rejection paths are pinned on randomized
// graphs — including the 4-byte header used for n > 62.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph6_round_trips_across_header_sizes(
        n in 1usize..90,
        seed in any::<u64>(),
        dens in 0u32..11,
    ) {
        let g = gen::gnp(n, dens as f64 / 10.0, seed).expect("valid p");
        let encoded = io::to_graph6(&g);
        // 1-byte header up to 62 nodes, the 126-marker 4-byte form above.
        if n <= 62 {
            prop_assert_eq!(encoded.as_bytes()[0] as usize, n + 63);
        } else {
            prop_assert_eq!(encoded.as_bytes()[0], 126);
        }
        let decoded = io::from_graph6(&encoded).expect("own encoding parses");
        prop_assert_eq!(&decoded, &g);
        // A trailing newline (files end with one) is tolerated.
        prop_assert_eq!(&io::from_graph6(&format!("{encoded}\n")).expect("newline ok"), &g);
    }

    #[test]
    fn graph6_rejects_truncations(
        n in 2usize..80,
        seed in any::<u64>(),
        cut in 1usize..8,
    ) {
        let g = gen::gnp(n, 0.5, seed).expect("valid p");
        let encoded = io::to_graph6(&g);
        prop_assume!(cut < encoded.len());
        let truncated = &encoded[..encoded.len() - cut];
        prop_assert!(
            io::from_graph6(truncated).is_err(),
            "accepted truncated input {:?}", truncated
        );
        // Extending is just as malformed as truncating.
        prop_assert!(io::from_graph6(&format!("{encoded}??")).is_err());
    }

    #[test]
    fn graph6_never_panics_on_garbage(
        bytes in prop::collection::vec(0u32..256, 0..40),
    ) {
        let garbage: String = bytes.iter().map(|&b| b as u8 as char).collect();
        // Any outcome is fine except a panic; an accepted parse must
        // describe a coherent graph that survives a re-encode round trip.
        if let Ok(g) = io::from_graph6(&garbage) {
            let reencoded = io::to_graph6(&g);
            prop_assert_eq!(&io::from_graph6(&reencoded).expect("own encoding parses"), &g);
        }
    }

    #[test]
    fn graph6_rejects_out_of_range_bytes(
        n in 2usize..70,
        seed in any::<u64>(),
        pos in 0usize..40,
        low in 0u32..63,
    ) {
        let g = gen::gnp(n, 0.5, seed).expect("valid p");
        let mut bytes = io::to_graph6(&g).into_bytes();
        prop_assume!(pos < bytes.len());
        // Bytes below 63 are outside the printable graph6 alphabet
        // (except that trailing whitespace is trimmed).
        bytes[pos] = low as u8;
        let mangled = String::from_utf8(bytes).expect("ascii");
        if let Ok(parsed) = io::from_graph6(&mangled) {
            // Only reachable when the mangled byte was trailing
            // whitespace trimmed away; the parse must then still match a
            // strict prefix encoding.
            prop_assert_eq!(io::to_graph6(&parsed), mangled.trim_end());
        }
    }
}

// ---------------------------------------------------- Generator invariants

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn harary_graphs_are_k_connected(k in 2usize..6, extra in 1usize..12) {
        let n = k + extra + (k * (k + extra)) % 2; // ensure n*k parity works
        prop_assume!(n > k);
        if k % 2 == 1 && n % 2 == 1 {
            return Ok(()); // no Harary graph exists
        }
        let g = gen::harary(k, n).expect("valid parameters");
        prop_assert_eq!(connectivity::vertex_connectivity(&g), k, "H({}, {})", k, n);
    }

    #[test]
    fn cycles_have_girth_n(n in 3usize..16) {
        let g = gen::cycle(n).expect("valid");
        prop_assert_eq!(analysis::girth(&g), Some(n as u32));
        prop_assert_eq!(traversal::diameter(&g, None), Some(n as u32 / 2));
    }

    #[test]
    fn gnp_is_reproducible(n in 2usize..30, seed in any::<u64>(), dens in 0u32..11) {
        let p = dens as f64 / 10.0;
        let a = gen::gnp(n, p, seed).expect("valid");
        let b = gen::gnp(n, p, seed).expect("valid");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn random_regular_is_regular(n in 4usize..24, d in 2usize..4, seed in any::<u64>()) {
        prop_assume!((n * d) % 2 == 0 && d < n);
        let g = gen::random_regular(n, d, seed).expect("pairing succeeds for small d");
        for v in g.nodes() {
            prop_assert_eq!(g.degree(v), d);
        }
    }
}

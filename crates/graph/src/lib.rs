//! Graph substrate for the fault tolerant routing constructions of
//! Peleg & Simons, *On Fault Tolerant Routings in General Networks*
//! (PODC 1986 / Information and Computation 74, 1987).
//!
//! The paper models a communication network as an undirected graph of
//! node-connectivity `t + 1` whose nodes are subject to faults. Every
//! construction in the paper rests on a small number of graph-theoretic
//! primitives, all of which this crate implements from scratch:
//!
//! * [`Graph`] — an immutable-after-construction undirected graph with
//!   sorted adjacency lists. Faults never mutate a graph; instead every
//!   traversal accepts an optional [`NodeSet`] overlay of forbidden nodes.
//! * [`DiGraph`] — a directed graph used to represent *surviving route
//!   graphs* (routes are ordered pairs, so the surviving graph is directed
//!   even when the underlying network is not).
//! * [`BitMatrix`] — a word-packed directed adjacency matrix whose BFS
//!   frontier expansion is a row-OR over `u64` words; the compiled
//!   surviving-graph engine measures all-pairs diameters on it with early
//!   exit on disconnection.
//! * [`flow`] — maximum flow with unit node capacities (node splitting),
//!   which yields Menger-style vertex-disjoint paths, the *tree routings*
//!   of the paper's Lemma 2, and minimum vertex cuts.
//! * [`connectivity`] — exact global vertex connectivity (the `t + 1`
//!   parameter of every theorem) and minimum separating sets.
//! * [`analysis`] — girth, short cycles through a node, independence,
//!   greedy *neighborhood sets* (Lemma 15) and *two-trees* root detection
//!   (Section 5).
//! * [`vulnerability`] — articulation points and bridges (Tarjan), the
//!   linear-time screen for single points of failure.
//! * [`gen`] — the network families the paper motivates: hypercubes,
//!   cube-connected cycles, wrapped butterflies, de Bruijn graphs, Harary
//!   graphs, circulants, tori, random `G(n,p)` graphs and more.
//! * [`io`] — graph6 interchange with external tools (nauty, geng,
//!   NetworkX).
//!
//! # Example
//!
//! Compute the connectivity of a 4-dimensional hypercube and find a
//! minimum separating set:
//!
//! ```
//! use ftr_graph::{connectivity, gen};
//!
//! # fn main() -> Result<(), ftr_graph::GraphError> {
//! let g = gen::hypercube(4)?;
//! assert_eq!(connectivity::vertex_connectivity(&g), 4);
//! let sep = connectivity::min_separator(&g).expect("hypercubes are not complete");
//! assert_eq!(sep.len(), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod bitmatrix;
pub mod connectivity;
mod digraph;
mod error;
pub mod flow;
pub mod gen;
mod graph;
pub mod io;
mod nodeset;
#[cfg(feature = "obs-counters")]
pub mod obs;
mod path;
pub mod spec;
pub mod traversal;
pub mod vulnerability;

pub use bitmatrix::{BfsScratch, BitMatrix};
pub use digraph::DiGraph;
pub use error::GraphError;
pub use graph::Graph;
pub use nodeset::{words_intersect, NodeSet};
pub use path::{nodes_affected_by, validate_nodes_in, Path};

/// Identifier of a node in a [`Graph`] or [`DiGraph`].
///
/// Nodes of a graph with `n` nodes are exactly `0..n`. A plain integer
/// alias (rather than a newtype) is used because the routing constructions
/// are index-heavy; all public APIs validate node ranges and report
/// [`GraphError::NodeOutOfRange`] on misuse.
pub type Node = u32;

/// Distance value representing "unreachable" in BFS outputs.
///
/// # Example
///
/// ```
/// use ftr_graph::{gen, traversal, INFINITY};
///
/// # fn main() -> Result<(), ftr_graph::GraphError> {
/// let g = gen::path_graph(2)?; // 0 - 1
/// let mut lonely = ftr_graph::Graph::new(3);
/// lonely.add_edge(0, 1)?;
/// let dist = traversal::bfs_distances(&lonely, 0, None);
/// assert_eq!(dist[2], INFINITY);
/// # let _ = g;
/// # Ok(())
/// # }
/// ```
pub const INFINITY: u32 = u32::MAX;

use std::fmt;

use crate::Node;

/// A set of nodes backed by a fixed-capacity bitmap.
///
/// `NodeSet` is the crate's fault overlay: traversals, flow computations
/// and surviving-graph constructions take an optional `&NodeSet` of
/// *forbidden* nodes instead of mutating the graph. The capacity is fixed
/// at construction to the node count of the graph the set refers to.
///
/// # Example
///
/// ```
/// use ftr_graph::NodeSet;
///
/// let mut faults = NodeSet::new(8);
/// faults.insert(3);
/// faults.insert(5);
/// assert_eq!(faults.len(), 2);
/// assert!(faults.contains(3));
/// assert_eq!(faults.iter().collect::<Vec<_>>(), vec![3, 5]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeSet {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl NodeSet {
    /// Creates an empty set able to hold nodes `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        NodeSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            len: 0,
        }
    }

    /// Creates a set with the given capacity containing `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if any node is `>= capacity`.
    ///
    /// # Example
    ///
    /// ```
    /// use ftr_graph::NodeSet;
    /// let s = NodeSet::from_nodes(10, [2, 4, 4]);
    /// assert_eq!(s.len(), 2);
    /// ```
    pub fn from_nodes(capacity: usize, nodes: impl IntoIterator<Item = Node>) -> Self {
        let mut set = NodeSet::new(capacity);
        for v in nodes {
            set.insert(v);
        }
        set
    }

    /// Number of nodes the set can hold (`0..capacity`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of nodes currently in the set. Constant time.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set contains no nodes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `node`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `node >= capacity`.
    pub fn insert(&mut self, node: Node) -> bool {
        let (w, b) = Self::locate(node, self.capacity);
        let mask = 1u64 << b;
        let fresh = self.words[w] & mask == 0;
        self.words[w] |= mask;
        self.len += usize::from(fresh);
        fresh
    }

    /// Removes `node`, returning `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `node >= capacity`.
    pub fn remove(&mut self, node: Node) -> bool {
        let (w, b) = Self::locate(node, self.capacity);
        let mask = 1u64 << b;
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        self.len -= usize::from(present);
        present
    }

    /// Returns `true` if `node` is in the set.
    ///
    /// Nodes at or beyond the capacity are reported as absent rather than
    /// panicking, so a set built for graph `G` can be safely queried with
    /// any node identifier.
    pub fn contains(&self, node: Node) -> bool {
        let node = node as usize;
        node < self.capacity && self.words[node / 64] & (1u64 << (node % 64)) != 0
    }

    /// Removes all nodes, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates over the contained nodes in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: if self.words.is_empty() {
                0
            } else {
                self.words[0]
            },
        }
    }

    /// Adds every node of `other` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &NodeSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "node set capacities must match"
        );
        self.len = merge_count(&mut self.words, &other.words, |a, b| a | b);
    }

    /// Keeps only nodes present in both sets.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "node set capacities must match"
        );
        self.len = merge_count(&mut self.words, &other.words, |a, b| a & b);
    }

    /// Removes every node of `other` from `self`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn difference_with(&mut self, other: &NodeSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "node set capacities must match"
        );
        self.len = merge_count(&mut self.words, &other.words, |a, b| a & !b);
    }

    /// Returns `true` if no node belongs to both sets.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn is_disjoint(&self, other: &NodeSet) -> bool {
        assert_eq!(
            self.capacity, other.capacity,
            "node set capacities must match"
        );
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Returns `true` if some node belongs to both sets — the word-level
    /// primitive behind the compiled surviving-graph engine's
    /// "is this route affected" test.
    ///
    /// Unlike [`NodeSet::is_disjoint`] this tolerates differing
    /// capacities (missing high words are treated as zero), so a route
    /// mask sized for graph `G` can be probed with any fault overlay.
    pub fn intersects(&self, other: &NodeSet) -> bool {
        words_intersect(&self.words, &other.words)
    }

    /// The backing bitmap as `u64` words, least-significant bit first
    /// (node `64 * i + b` lives in bit `b` of word `i`).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Returns `true` if every node of `self` belongs to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        assert_eq!(
            self.capacity, other.capacity,
            "node set capacities must match"
        );
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    fn locate(node: Node, capacity: usize) -> (usize, u32) {
        let idx = node as usize;
        assert!(
            idx < capacity,
            "node {node} out of range for node set of capacity {capacity}"
        );
        (idx / 64, (idx % 64) as u32)
    }
}

/// Applies `op` word-by-word (`dst[i] = op(dst[i], src[i])`) and returns
/// the resulting popcount in the same pass.
///
/// The main loop is unrolled four words (256 bits) wide with independent
/// per-lane popcount accumulators, so it compiles to straight-line
/// bitwise ops that vectorize; the ragged tail (word counts not divisible
/// by four) is handled by a scalar remainder loop.
#[inline]
fn merge_count(dst: &mut [u64], src: &[u64], op: impl Fn(u64, u64) -> u64 + Copy) -> usize {
    debug_assert_eq!(dst.len(), src.len());
    let mut d4 = dst.chunks_exact_mut(4);
    let mut s4 = src.chunks_exact(4);
    let (mut c0, mut c1, mut c2, mut c3) = (0usize, 0usize, 0usize, 0usize);
    for (d, s) in (&mut d4).zip(&mut s4) {
        let w0 = op(d[0], s[0]);
        let w1 = op(d[1], s[1]);
        let w2 = op(d[2], s[2]);
        let w3 = op(d[3], s[3]);
        d[0] = w0;
        d[1] = w1;
        d[2] = w2;
        d[3] = w3;
        c0 += w0.count_ones() as usize;
        c1 += w1.count_ones() as usize;
        c2 += w2.count_ones() as usize;
        c3 += w3.count_ones() as usize;
    }
    let mut count = c0 + c1 + c2 + c3;
    for (d, s) in d4.into_remainder().iter_mut().zip(s4.remainder()) {
        *d = op(*d, *s);
        count += d.count_ones() as usize;
    }
    count
}

/// Returns `true` if two word-packed bitsets share a set bit.
///
/// The common word-scan behind [`NodeSet::intersects`] and the compiled
/// engine's per-route fault masks; slices of different lengths are
/// compared over their common prefix (missing high words count as
/// zero). Four words are tested per branch so short masks (the common
/// case) decide in one OR-reduced compare.
pub fn words_intersect(a: &[u64], b: &[u64]) -> bool {
    let common = a.len().min(b.len());
    let (a, b) = (&a[..common], &b[..common]);
    let mut a4 = a.chunks_exact(4);
    let mut b4 = b.chunks_exact(4);
    for (x, y) in (&mut a4).zip(&mut b4) {
        if ((x[0] & y[0]) | (x[1] & y[1]) | (x[2] & y[2]) | (x[3] & y[3])) != 0 {
            return true;
        }
    }
    a4.remainder()
        .iter()
        .zip(b4.remainder())
        .any(|(x, y)| x & y != 0)
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl Extend<Node> for NodeSet {
    fn extend<T: IntoIterator<Item = Node>>(&mut self, iter: T) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = Node;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the nodes of a [`NodeSet`] in increasing order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a NodeSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = Node;

    fn next(&mut self) -> Option<Node> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros();
                self.current &= self.current - 1;
                return Some((self.word_idx * 64) as Node + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new(100);
        assert!(s.insert(10));
        assert!(!s.insert(10));
        assert!(s.contains(10));
        assert_eq!(s.len(), 1);
        assert!(s.remove(10));
        assert!(!s.remove(10));
        assert!(s.is_empty());
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = NodeSet::new(5);
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        NodeSet::new(5).insert(5);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let s = NodeSet::from_nodes(200, [199, 0, 64, 63, 65, 128]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn set_algebra() {
        let mut a = NodeSet::from_nodes(70, [1, 2, 3, 69]);
        let b = NodeSet::from_nodes(70, [2, 3, 4]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 69]);
        assert_eq!(u.len(), 5);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);

        a.difference_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 69]);
    }

    #[test]
    fn disjoint_and_subset() {
        let a = NodeSet::from_nodes(10, [1, 2]);
        let b = NodeSet::from_nodes(10, [3, 4]);
        let c = NodeSet::from_nodes(10, [1, 2, 3]);
        assert!(a.is_disjoint(&b));
        assert!(!a.is_disjoint(&c));
        assert!(a.is_subset(&c));
        assert!(!c.is_subset(&a));
    }

    #[test]
    fn clear_resets_len() {
        let mut s = NodeSet::from_nodes(10, [1, 2, 3]);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(1));
    }

    #[test]
    fn debug_shows_elements() {
        let s = NodeSet::from_nodes(10, [1, 5]);
        assert_eq!(format!("{s:?}"), "{1, 5}");
    }

    #[test]
    fn extend_inserts() {
        let mut s = NodeSet::new(10);
        s.extend([1u32, 2, 2, 3]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn intersects_matches_disjoint() {
        let a = NodeSet::from_nodes(100, [1, 65]);
        let b = NodeSet::from_nodes(100, [65]);
        let c = NodeSet::from_nodes(100, [2, 64]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.intersects(&c), !a.is_disjoint(&c));
    }

    #[test]
    fn intersects_tolerates_capacity_mismatch() {
        let small = NodeSet::from_nodes(10, [3]);
        let large = NodeSet::from_nodes(200, [3, 150]);
        assert!(small.intersects(&large));
        let far = NodeSet::from_nodes(200, [150]);
        assert!(!small.intersects(&far));
    }

    #[test]
    fn words_expose_the_bitmap() {
        let s = NodeSet::from_nodes(130, [0, 63, 64, 129]);
        assert_eq!(s.words().len(), 3);
        assert_eq!(s.words()[0], 1 | (1 << 63));
        assert_eq!(s.words()[1], 1);
        assert_eq!(s.words()[2], 2);
    }

    #[test]
    fn zero_capacity_set_works() {
        let s = NodeSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
    }
}

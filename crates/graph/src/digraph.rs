use std::collections::VecDeque;
use std::fmt;

use crate::{BitMatrix, GraphError, Node, NodeSet, INFINITY};

/// A directed simple graph.
///
/// Surviving route graphs are directed: a routing assigns a path to each
/// *ordered* pair, so after faults the edge `x → y` may survive while
/// `y → x` does not (for unidirectional routings). [`DiGraph`] is the
/// representation used by `ftr-core`'s surviving-graph machinery.
///
/// # Example
///
/// ```
/// use ftr_graph::DiGraph;
///
/// # fn main() -> Result<(), ftr_graph::GraphError> {
/// let mut d = DiGraph::new(3);
/// d.add_arc(0, 1)?;
/// d.add_arc(1, 2)?;
/// let dist = d.bfs_distances(0, None);
/// assert_eq!(dist, vec![0, 1, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DiGraph {
    out_adj: Vec<Vec<Node>>,
    arc_count: usize,
}

impl DiGraph {
    /// Creates an arcless directed graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        DiGraph {
            out_adj: vec![Vec::new(); n],
            arc_count: 0,
        }
    }

    /// Adds the arc `u → v`, returning `true` if it was new.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfRange`] if `u` or `v` is not a node.
    /// * [`GraphError::SelfLoop`] if `u == v`.
    pub fn add_arc(&mut self, u: Node, v: Node) -> Result<bool, GraphError> {
        let n = self.out_adj.len();
        for w in [u, v] {
            if w as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: w, n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        match self.out_adj[u as usize].binary_search(&v) {
            Ok(_) => Ok(false),
            Err(pos) => {
                self.out_adj[u as usize].insert(pos, v);
                self.arc_count += 1;
                Ok(true)
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of directed arcs.
    pub fn arc_count(&self) -> usize {
        self.arc_count
    }

    /// Returns `true` if the arc `u → v` exists. Out-of-range arguments
    /// yield `false`.
    pub fn has_arc(&self, u: Node, v: Node) -> bool {
        (u as usize) < self.out_adj.len() && self.out_adj[u as usize].binary_search(&v).is_ok()
    }

    /// The sorted out-neighbor list of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a node of the graph.
    pub fn out_neighbors(&self, u: Node) -> &[Node] {
        &self.out_adj[u as usize]
    }

    /// Iterates over all nodes `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        0..self.out_adj.len() as Node
    }

    /// Iterates over all arcs `(u, v)`.
    pub fn arcs(&self) -> impl Iterator<Item = (Node, Node)> + '_ {
        self.out_adj
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().copied().map(move |v| (u as Node, v)))
    }

    /// BFS distances from `src` along arcs, skipping nodes in `avoid`.
    ///
    /// Unreachable (or avoided) nodes get [`INFINITY`]. If `src` itself is
    /// avoided, every distance is [`INFINITY`].
    ///
    /// # Panics
    ///
    /// Panics if `src` is not a node of the graph.
    pub fn bfs_distances(&self, src: Node, avoid: Option<&NodeSet>) -> Vec<u32> {
        let n = self.out_adj.len();
        assert!((src as usize) < n, "source {src} out of range");
        let mut dist = vec![INFINITY; n];
        let blocked = |v: Node| avoid.is_some_and(|a| a.contains(v));
        if blocked(src) {
            return dist;
        }
        dist[src as usize] = 0;
        let mut queue = VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for &v in &self.out_adj[u as usize] {
                if dist[v as usize] == INFINITY && !blocked(v) {
                    dist[v as usize] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Packs the adjacency into a [`BitMatrix`], the word-parallel form
    /// used by the compiled verification engine (`m.diameter(avoid)`
    /// equals `self.diameter(avoid)` for every overlay).
    pub fn to_bitmatrix(&self) -> BitMatrix {
        let mut m = BitMatrix::new(self.node_count());
        for (u, v) in self.arcs() {
            m.set(u, v);
        }
        m
    }

    /// The diameter restricted to the nodes *not* in `avoid`: the maximum
    /// over ordered pairs `(x, y)` of surviving nodes of the BFS distance
    /// from `x` to `y`.
    ///
    /// Returns `None` if some surviving node cannot reach another
    /// (infinite diameter) and `Some(0)` if at most one node survives.
    pub fn diameter(&self, avoid: Option<&NodeSet>) -> Option<u32> {
        let mut best = 0;
        let blocked = |v: Node| avoid.is_some_and(|a| a.contains(v));
        for src in self.nodes() {
            if blocked(src) {
                continue;
            }
            let dist = self.bfs_distances(src, avoid);
            for v in self.nodes() {
                if v != src && !blocked(v) {
                    let d = dist[v as usize];
                    if d == INFINITY {
                        return None;
                    }
                    best = best.max(d);
                }
            }
        }
        Some(best)
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiGraph")
            .field("nodes", &self.node_count())
            .field("arcs", &self.arc_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_cycle() -> DiGraph {
        let mut d = DiGraph::new(3);
        d.add_arc(0, 1).unwrap();
        d.add_arc(1, 2).unwrap();
        d.add_arc(2, 0).unwrap();
        d
    }

    #[test]
    fn arcs_are_directed() {
        let mut d = DiGraph::new(2);
        d.add_arc(0, 1).unwrap();
        assert!(d.has_arc(0, 1));
        assert!(!d.has_arc(1, 0));
        assert_eq!(d.arc_count(), 1);
    }

    #[test]
    fn duplicate_arc_ignored() {
        let mut d = DiGraph::new(2);
        assert!(d.add_arc(0, 1).unwrap());
        assert!(!d.add_arc(0, 1).unwrap());
        assert_eq!(d.arc_count(), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let mut d = DiGraph::new(2);
        assert_eq!(d.add_arc(0, 0), Err(GraphError::SelfLoop { node: 0 }));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = DiGraph::new(2);
        assert!(matches!(
            d.add_arc(0, 9),
            Err(GraphError::NodeOutOfRange { node: 9, n: 2 })
        ));
    }

    #[test]
    fn bfs_follows_arc_direction() {
        let d = triangle_cycle();
        assert_eq!(d.bfs_distances(0, None), vec![0, 1, 2]);
        assert_eq!(d.bfs_distances(2, None), vec![1, 2, 0]);
    }

    #[test]
    fn bfs_respects_avoid() {
        let d = triangle_cycle();
        let avoid = NodeSet::from_nodes(3, [1]);
        assert_eq!(
            d.bfs_distances(0, Some(&avoid)),
            vec![0, INFINITY, INFINITY]
        );
    }

    #[test]
    fn bfs_from_avoided_source() {
        let d = triangle_cycle();
        let avoid = NodeSet::from_nodes(3, [0]);
        assert_eq!(d.bfs_distances(0, Some(&avoid)), vec![INFINITY; 3]);
    }

    #[test]
    fn diameter_of_directed_cycle() {
        let d = triangle_cycle();
        assert_eq!(d.diameter(None), Some(2));
    }

    #[test]
    fn diameter_disconnected_is_none() {
        let mut d = DiGraph::new(2);
        d.add_arc(0, 1).unwrap();
        // 1 cannot reach 0
        assert_eq!(d.diameter(None), None);
    }

    #[test]
    fn diameter_with_faults_shrinks_node_set() {
        let mut d = DiGraph::new(4);
        // path 0 -> 1 -> 2 -> 3 plus shortcut arcs back
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 2), (2, 1), (1, 0)] {
            d.add_arc(u, v).unwrap();
        }
        assert_eq!(d.diameter(None), Some(3));
        let avoid = NodeSet::from_nodes(4, [3]);
        assert_eq!(d.diameter(Some(&avoid)), Some(2));
    }

    #[test]
    fn diameter_single_survivor_is_zero() {
        let d = triangle_cycle();
        let avoid = NodeSet::from_nodes(3, [0, 1]);
        assert_eq!(d.diameter(Some(&avoid)), Some(0));
    }

    #[test]
    fn arcs_iterator() {
        let d = triangle_cycle();
        assert_eq!(d.arcs().collect::<Vec<_>>(), vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn bitmatrix_conversion_preserves_arcs_and_diameter() {
        let d = triangle_cycle();
        let m = d.to_bitmatrix();
        assert_eq!(m.arc_count(), d.arc_count());
        for (u, v) in d.arcs() {
            assert!(m.has(u, v));
        }
        assert_eq!(m.diameter(None), d.diameter(None));
        let avoid = NodeSet::from_nodes(3, [1]);
        assert_eq!(m.diameter(Some(&avoid)), d.diameter(Some(&avoid)));
    }
}

use std::fmt;

use crate::{Graph, GraphError, Node, NodeSet};

/// A simple path: a non-empty sequence of distinct nodes.
///
/// Routes in the paper's model are fixed simple paths, so `Path` enforces
/// simplicity at construction. Adjacency of consecutive nodes depends on a
/// graph, so it is checked separately with [`Path::validate_in`].
///
/// A single-node path represents the trivial route from a node to itself
/// and is used nowhere by the constructions, but is permitted for
/// generality of the type.
///
/// # Example
///
/// ```
/// use ftr_graph::{Graph, Path};
///
/// # fn main() -> Result<(), ftr_graph::GraphError> {
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// let p = Path::new(vec![0, 1, 2, 3])?;
/// p.validate_in(&g)?;
/// assert_eq!(p.source(), 0);
/// assert_eq!(p.target(), 3);
/// assert_eq!(p.len(), 3); // number of edges
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Path {
    nodes: Vec<Node>,
}

impl Path {
    /// Creates a path from a node sequence.
    ///
    /// # Errors
    ///
    /// * [`GraphError::EmptyPath`] if `nodes` is empty.
    /// * [`GraphError::NonSimplePath`] if a node repeats.
    pub fn new(nodes: Vec<Node>) -> Result<Self, GraphError> {
        if nodes.is_empty() {
            return Err(GraphError::EmptyPath);
        }
        let max = *nodes.iter().max().expect("non-empty") as usize;
        let mut seen = NodeSet::new(max + 1);
        for &v in &nodes {
            if !seen.insert(v) {
                return Err(GraphError::NonSimplePath { node: v });
            }
        }
        Ok(Path { nodes })
    }

    /// Creates the length-one path consisting of the edge `u — v`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NonSimplePath`] if `u == v`.
    pub fn edge(u: Node, v: Node) -> Result<Self, GraphError> {
        Path::new(vec![u, v])
    }

    /// First node of the path.
    pub fn source(&self) -> Node {
        self.nodes[0]
    }

    /// Last node of the path.
    pub fn target(&self) -> Node {
        *self.nodes.last().expect("paths are non-empty")
    }

    /// Number of edges (one less than the number of nodes).
    #[allow(clippy::len_without_is_empty)] // a path is never empty
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The node sequence.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Iterates over the interior nodes (all but source and target).
    pub fn interior(&self) -> impl Iterator<Item = Node> + '_ {
        self.nodes
            .get(1..self.nodes.len() - 1)
            .unwrap_or(&[])
            .iter()
            .copied()
    }

    /// Returns `true` if `v` occurs anywhere on the path (endpoints
    /// included).
    pub fn contains(&self, v: Node) -> bool {
        self.nodes.contains(&v)
    }

    /// Returns `true` if any node of the path belongs to `faults`.
    ///
    /// This is the paper's "a route is *affected* by a fault if the fault
    /// is contained in it".
    pub fn is_affected_by(&self, faults: &NodeSet) -> bool {
        nodes_affected_by(&self.nodes, faults)
    }

    /// The same path traversed in the opposite direction.
    pub fn reversed(&self) -> Path {
        let mut nodes = self.nodes.clone();
        nodes.reverse();
        Path { nodes }
    }

    /// Checks that every node exists in `g` and consecutive nodes are
    /// adjacent.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfRange`] if a node is not in `g`.
    /// * [`GraphError::MissingEdge`] if consecutive nodes are not adjacent.
    pub fn validate_in(&self, g: &Graph) -> Result<(), GraphError> {
        validate_nodes_in(&self.nodes, g)
    }
}

/// Returns `true` if any node of the slice belongs to `faults` — the
/// borrowed-slice form of [`Path::is_affected_by`], used by route tables
/// that store their paths in a flat node arena instead of as [`Path`]
/// values.
pub fn nodes_affected_by(nodes: &[Node], faults: &NodeSet) -> bool {
    nodes.iter().any(|&v| faults.contains(v))
}

/// Checks that every node of the slice exists in `g` and consecutive
/// nodes are adjacent — the borrowed-slice form of [`Path::validate_in`]
/// for arena-stored routes (simplicity is the arena owner's invariant
/// and is not re-checked here).
///
/// # Errors
///
/// * [`GraphError::NodeOutOfRange`] if a node is not in `g`.
/// * [`GraphError::MissingEdge`] if consecutive nodes are not adjacent.
pub fn validate_nodes_in(nodes: &[Node], g: &Graph) -> Result<(), GraphError> {
    for &v in nodes {
        if v as usize >= g.node_count() {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                n: g.node_count(),
            });
        }
    }
    for w in nodes.windows(2) {
        if !g.has_edge(w[0], w[1]) {
            return Err(GraphError::MissingEdge { u: w[0], v: w[1] });
        }
    }
    Ok(())
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Path({self})")
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty() {
        assert_eq!(Path::new(vec![]), Err(GraphError::EmptyPath));
    }

    #[test]
    fn rejects_repeats() {
        assert_eq!(
            Path::new(vec![0, 1, 0]),
            Err(GraphError::NonSimplePath { node: 0 })
        );
    }

    #[test]
    fn singleton_path_allowed() {
        let p = Path::new(vec![7]).unwrap();
        assert_eq!(p.source(), 7);
        assert_eq!(p.target(), 7);
        assert_eq!(p.len(), 0);
        assert_eq!(p.interior().count(), 0);
    }

    #[test]
    fn edge_constructor() {
        let p = Path::edge(1, 2).unwrap();
        assert_eq!(p.nodes(), &[1, 2]);
        assert!(Path::edge(3, 3).is_err());
    }

    #[test]
    fn endpoints_and_interior() {
        let p = Path::new(vec![4, 2, 9, 1]).unwrap();
        assert_eq!(p.source(), 4);
        assert_eq!(p.target(), 1);
        assert_eq!(p.len(), 3);
        assert_eq!(p.interior().collect::<Vec<_>>(), vec![2, 9]);
    }

    #[test]
    fn affected_by_faults_on_any_node() {
        let p = Path::new(vec![0, 1, 2]).unwrap();
        assert!(p.is_affected_by(&NodeSet::from_nodes(3, [1])));
        assert!(p.is_affected_by(&NodeSet::from_nodes(3, [0])));
        assert!(!p.is_affected_by(&NodeSet::from_nodes(3, [])));
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let p = Path::new(vec![0, 1, 2]).unwrap();
        let r = p.reversed();
        assert_eq!(r.nodes(), &[2, 1, 0]);
        assert_eq!(r.source(), 2);
    }

    #[test]
    fn validate_in_checks_adjacency() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        assert!(Path::new(vec![0, 1]).unwrap().validate_in(&g).is_ok());
        assert_eq!(
            Path::new(vec![0, 2]).unwrap().validate_in(&g),
            Err(GraphError::MissingEdge { u: 0, v: 2 })
        );
        assert_eq!(
            Path::new(vec![0, 5]).unwrap().validate_in(&g),
            Err(GraphError::NodeOutOfRange { node: 5, n: 3 })
        );
    }

    #[test]
    fn display_format() {
        let p = Path::new(vec![3, 1, 4]).unwrap();
        assert_eq!(p.to_string(), "3 -> 1 -> 4");
        assert_eq!(format!("{p:?}"), "Path(3 -> 1 -> 4)");
    }
}

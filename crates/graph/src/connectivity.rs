//! Exact global vertex connectivity and minimum separating sets.
//!
//! Every theorem in the paper is parameterised by the node-connectivity
//! `t + 1` of the network, and the kernel construction (Section 3) starts
//! from a *minimal separating set* of exactly `t + 1` nodes. This module
//! computes both.
//!
//! The algorithm is the classical one (Even): fix a minimum-degree node
//! `v`; the connectivity is the minimum of the local connectivities from
//! `v` to each of its non-neighbors and between each non-adjacent pair of
//! `v`'s neighbors. Correctness: a minimum separator either avoids `v`
//! (then it separates `v` from some non-neighbor) or contains `v` (then,
//! being minimal, it has neighbors of `v` on both sides, which are
//! non-adjacent and separated by it).

use crate::{flow, traversal, Graph, Node, NodeSet};

/// Enumerates the node pairs whose local connectivities witness the
/// global connectivity (see module docs), fewest-first.
fn witness_pairs(g: &Graph) -> Vec<(Node, Node)> {
    let v = g
        .nodes()
        .min_by_key(|&u| g.degree(u))
        .expect("caller ensures a non-empty graph");
    let mut pairs = Vec::new();
    let nbrs = g.neighbor_set(v);
    for w in g.nodes() {
        if w != v && !nbrs.contains(w) {
            pairs.push((v, w));
        }
    }
    let nb: Vec<Node> = g.neighbors(v).to_vec();
    for (i, &x) in nb.iter().enumerate() {
        for &y in &nb[i + 1..] {
            if !g.has_edge(x, y) {
                pairs.push((x, y));
            }
        }
    }
    pairs
}

/// The node connectivity κ(G): the minimum number of nodes whose removal
/// disconnects the graph (or `n - 1` for complete graphs, by convention).
///
/// Returns 0 for disconnected graphs and graphs with fewer than two
/// nodes.
///
/// # Example
///
/// ```
/// use ftr_graph::{connectivity, gen};
/// # fn main() -> Result<(), ftr_graph::GraphError> {
/// assert_eq!(connectivity::vertex_connectivity(&gen::petersen()), 3);
/// assert_eq!(connectivity::vertex_connectivity(&gen::cycle(9)?), 2);
/// assert_eq!(connectivity::vertex_connectivity(&gen::complete(4)?), 3);
/// # Ok(())
/// # }
/// ```
pub fn vertex_connectivity(g: &Graph) -> usize {
    let n = g.node_count();
    if n < 2 {
        return 0;
    }
    if g.is_complete() {
        return n - 1;
    }
    if !traversal::is_connected(g, None) {
        return 0;
    }
    let mut k = g.min_degree();
    for (s, t) in witness_pairs(g) {
        if k == 0 {
            break;
        }
        let local = flow::local_vertex_connectivity(g, s, t, Some(k))
            .expect("witness pairs are valid distinct nodes");
        k = k.min(local);
    }
    k
}

/// Returns `true` if κ(G) is at least `k`, stopping flows early at `k`
/// augmentations. Cheaper than [`vertex_connectivity`] when only a
/// threshold is needed (construction preconditions check κ ≥ t + 1).
///
/// `k == 0` is vacuously true; complete graphs satisfy `k <= n - 1`.
pub fn is_k_connected(g: &Graph, k: usize) -> bool {
    if k == 0 {
        return true;
    }
    let n = g.node_count();
    if n < 2 {
        return false;
    }
    if g.is_complete() {
        return k < n;
    }
    if g.min_degree() < k || !traversal::is_connected(g, None) {
        return false;
    }
    witness_pairs(g).into_iter().all(|(s, t)| {
        flow::local_vertex_connectivity(g, s, t, Some(k))
            .expect("witness pairs are valid distinct nodes")
            >= k
    })
}

/// A minimum separating set: κ(G) nodes whose removal disconnects the
/// graph. Returns `None` for complete graphs and graphs with fewer than
/// two nodes (nothing separates them); a disconnected graph yields
/// `Some(empty set)`.
///
/// # Example
///
/// ```
/// use ftr_graph::{connectivity, gen, traversal};
/// # fn main() -> Result<(), ftr_graph::GraphError> {
/// let g = gen::torus(4, 4)?;
/// let sep = connectivity::min_separator(&g).expect("torus is not complete");
/// assert_eq!(sep.len(), 4);
/// assert!(!traversal::is_connected(&g, Some(&sep)));
/// # Ok(())
/// # }
/// ```
pub fn min_separator(g: &Graph) -> Option<NodeSet> {
    let n = g.node_count();
    if n < 2 || g.is_complete() {
        return None;
    }
    if !traversal::is_connected(g, None) {
        return Some(NodeSet::new(n));
    }
    let mut k = usize::MAX;
    let mut best_pair = None;
    for (s, t) in witness_pairs(g) {
        let local = flow::local_vertex_connectivity(g, s, t, Some(k))
            .expect("witness pairs are valid distinct nodes");
        if local < k {
            k = local;
            best_pair = Some((s, t));
        }
    }
    let (s, t) = best_pair.expect("a non-complete connected graph has a separating witness pair");
    let cut = flow::min_st_vertex_cut(g, s, t).expect("witness pairs are non-adjacent");
    debug_assert_eq!(cut.len(), k);
    Some(cut)
}

/// Returns `true` if removing `set` disconnects the remaining nodes into
/// two or more non-empty parts (the paper's definition of a *separating
/// set*).
///
/// # Panics
///
/// Panics if `set` was built for a different node count.
pub fn is_separator(g: &Graph, set: &NodeSet) -> bool {
    assert_eq!(set.capacity(), g.node_count());
    let survivors = g.node_count() - set.len();
    survivors >= 2 && !traversal::is_connected(g, Some(set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn known_connectivities() {
        assert_eq!(vertex_connectivity(&gen::cycle(8).unwrap()), 2);
        assert_eq!(vertex_connectivity(&gen::hypercube(3).unwrap()), 3);
        assert_eq!(vertex_connectivity(&gen::hypercube(4).unwrap()), 4);
        assert_eq!(vertex_connectivity(&gen::torus(3, 4).unwrap()), 4);
        assert_eq!(vertex_connectivity(&gen::petersen()), 3);
        assert_eq!(vertex_connectivity(&gen::path_graph(5).unwrap()), 1);
        assert_eq!(vertex_connectivity(&gen::star(6).unwrap()), 1);
        assert_eq!(vertex_connectivity(&gen::wheel(7).unwrap()), 3);
        assert_eq!(
            vertex_connectivity(&gen::complete_bipartite(3, 5).unwrap()),
            3
        );
        assert_eq!(
            vertex_connectivity(&gen::cube_connected_cycles(3).unwrap()),
            3
        );
    }

    #[test]
    fn harary_graphs_hit_their_design_connectivity() {
        for (k, n) in [(2, 9), (3, 10), (4, 11), (5, 12), (6, 13)] {
            let g = gen::harary(k, n).unwrap();
            assert_eq!(vertex_connectivity(&g), k, "H({k},{n})");
        }
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(vertex_connectivity(&Graph::new(0)), 0);
        assert_eq!(vertex_connectivity(&Graph::new(1)), 0);
        assert_eq!(vertex_connectivity(&Graph::new(5)), 0); // disconnected
        assert_eq!(vertex_connectivity(&gen::complete(2).unwrap()), 1);
    }

    #[test]
    fn threshold_checks() {
        let g = gen::hypercube(4).unwrap();
        assert!(is_k_connected(&g, 0));
        assert!(is_k_connected(&g, 4));
        assert!(!is_k_connected(&g, 5));
        assert!(is_k_connected(&gen::complete(5).unwrap(), 4));
        assert!(!is_k_connected(&gen::complete(5).unwrap(), 5));
        assert!(!is_k_connected(&Graph::new(3), 1));
    }

    #[test]
    fn min_separator_has_connectivity_size_and_separates() {
        for g in [
            gen::cycle(7).unwrap(),
            gen::hypercube(3).unwrap(),
            gen::torus(3, 3).unwrap(),
            gen::petersen(),
            gen::harary(4, 12).unwrap(),
        ] {
            let k = vertex_connectivity(&g);
            let sep = min_separator(&g).unwrap();
            assert_eq!(sep.len(), k);
            assert!(is_separator(&g, &sep));
        }
    }

    #[test]
    fn min_separator_of_complete_graph_is_none() {
        assert!(min_separator(&gen::complete(4).unwrap()).is_none());
        assert!(min_separator(&Graph::new(1)).is_none());
    }

    #[test]
    fn min_separator_of_disconnected_graph_is_empty() {
        let sep = min_separator(&Graph::new(4)).unwrap();
        assert!(sep.is_empty());
    }

    #[test]
    fn is_separator_rejects_non_separating_sets() {
        let g = gen::cycle(6).unwrap();
        assert!(!is_separator(&g, &NodeSet::from_nodes(6, [0])));
        assert!(is_separator(&g, &NodeSet::from_nodes(6, [0, 3])));
        // removing all but one node leaves nothing to separate
        assert!(!is_separator(&g, &NodeSet::from_nodes(6, [0, 1, 2, 3, 4])));
    }

    #[test]
    fn connectivity_matches_randomized_graphs_brute_force() {
        // Cross-check the flow-based connectivity against brute force on
        // small random graphs: try all subsets up to size 3.
        for seed in 0..8 {
            let g = gen::gnp(9, 0.45, seed).unwrap();
            let fast = vertex_connectivity(&g);
            let brute = brute_force_connectivity(&g);
            assert_eq!(fast, brute, "seed {seed}");
        }
    }

    fn brute_force_connectivity(g: &Graph) -> usize {
        let n = g.node_count();
        assert!(n <= 20, "brute force is exponential");
        if g.is_complete() {
            return n.saturating_sub(1);
        }
        if !traversal::is_connected(g, None) {
            return 0;
        }
        let mut best = n - 1;
        for mask in 0u32..(1 << n) {
            let size = mask.count_ones() as usize;
            if size >= best {
                continue;
            }
            let set = NodeSet::from_nodes(n, (0..n as Node).filter(|&v| mask & (1 << v) != 0));
            if is_separator(g, &set) {
                best = size;
            }
        }
        best
    }
}

//! Breadth-first traversals with fault overlays.
//!
//! Every function takes an optional `avoid: Option<&NodeSet>` — the set of
//! faulty nodes. Avoided nodes are treated as absent: they are never
//! visited and contribute no edges. This is how the crate models the
//! paper's fault sets `F` without mutating graphs.

use std::collections::VecDeque;

use crate::{Graph, Node, NodeSet, Path, INFINITY};

/// BFS distances from `src`, skipping nodes in `avoid`.
///
/// Unreachable or avoided nodes get [`INFINITY`]; if `src` is avoided,
/// every entry is [`INFINITY`].
///
/// # Panics
///
/// Panics if `src` is not a node of `g`.
///
/// # Example
///
/// ```
/// use ftr_graph::{gen, traversal, NodeSet, INFINITY};
///
/// # fn main() -> Result<(), ftr_graph::GraphError> {
/// let g = gen::cycle(5)?; // 0-1-2-3-4-0
/// let faults = NodeSet::from_nodes(5, [1]);
/// let dist = traversal::bfs_distances(&g, 0, Some(&faults));
/// assert_eq!(dist, vec![0, INFINITY, 3, 2, 1]);
/// # Ok(())
/// # }
/// ```
pub fn bfs_distances(g: &Graph, src: Node, avoid: Option<&NodeSet>) -> Vec<u32> {
    let n = g.node_count();
    assert!((src as usize) < n, "source {src} out of range");
    let mut dist = vec![INFINITY; n];
    let blocked = |v: Node| avoid.is_some_and(|a| a.contains(v));
    if blocked(src) {
        return dist;
    }
    dist[src as usize] = 0;
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == INFINITY && !blocked(v) {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Distance between `u` and `v` avoiding `avoid`, or [`INFINITY`] if
/// disconnected.
///
/// # Panics
///
/// Panics if `u` or `v` is not a node of `g`.
pub fn distance(g: &Graph, u: Node, v: Node, avoid: Option<&NodeSet>) -> u32 {
    assert!((v as usize) < g.node_count(), "target {v} out of range");
    bfs_distances(g, u, avoid)[v as usize]
}

/// A shortest path from `src` to `dst` avoiding `avoid`, or `None` if
/// none exists.
///
/// # Panics
///
/// Panics if `src` or `dst` is not a node of `g`.
///
/// # Example
///
/// ```
/// use ftr_graph::{gen, traversal};
///
/// # fn main() -> Result<(), ftr_graph::GraphError> {
/// let g = gen::cycle(6)?;
/// let p = traversal::shortest_path(&g, 0, 3, None).expect("connected");
/// assert_eq!(p.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn shortest_path(g: &Graph, src: Node, dst: Node, avoid: Option<&NodeSet>) -> Option<Path> {
    let n = g.node_count();
    assert!((src as usize) < n, "source {src} out of range");
    assert!((dst as usize) < n, "target {dst} out of range");
    let blocked = |v: Node| avoid.is_some_and(|a| a.contains(v));
    if blocked(src) || blocked(dst) {
        return None;
    }
    if src == dst {
        return Some(Path::new(vec![src]).expect("singleton is simple"));
    }
    let mut parent = vec![Node::MAX; n];
    let mut dist = vec![INFINITY; n];
    dist[src as usize] = 0;
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v as usize] == INFINITY && !blocked(v) {
                dist[v as usize] = dist[u as usize] + 1;
                parent[v as usize] = u;
                if v == dst {
                    let mut nodes = vec![dst];
                    let mut cur = dst;
                    while cur != src {
                        cur = parent[cur as usize];
                        nodes.push(cur);
                    }
                    nodes.reverse();
                    return Some(Path::new(nodes).expect("BFS paths are simple"));
                }
                queue.push_back(v);
            }
        }
    }
    None
}

/// Returns `true` if the subgraph induced by the non-avoided nodes is
/// connected. Graphs with at most one surviving node count as connected.
pub fn is_connected(g: &Graph, avoid: Option<&NodeSet>) -> bool {
    let blocked = |v: Node| avoid.is_some_and(|a| a.contains(v));
    let Some(start) = g.nodes().find(|&v| !blocked(v)) else {
        return true;
    };
    let dist = bfs_distances(g, start, avoid);
    g.nodes()
        .all(|v| blocked(v) || dist[v as usize] != INFINITY)
}

/// Labels the connected components of the non-avoided subgraph.
///
/// Returns `(component_count, labels)`; avoided nodes get the label
/// `u32::MAX`.
pub fn connected_components(g: &Graph, avoid: Option<&NodeSet>) -> (usize, Vec<u32>) {
    let n = g.node_count();
    let blocked = |v: Node| avoid.is_some_and(|a| a.contains(v));
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    for start in g.nodes() {
        if blocked(start) || labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = count;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if labels[v as usize] == u32::MAX && !blocked(v) {
                    labels[v as usize] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    (count as usize, labels)
}

/// Eccentricity of each non-avoided node: its maximum distance to any
/// other non-avoided node, or [`INFINITY`] if it cannot reach one.
/// Avoided nodes get [`INFINITY`].
pub fn eccentricities(g: &Graph, avoid: Option<&NodeSet>) -> Vec<u32> {
    let n = g.node_count();
    let blocked = |v: Node| avoid.is_some_and(|a| a.contains(v));
    let mut ecc = vec![INFINITY; n];
    for v in g.nodes() {
        if blocked(v) {
            continue;
        }
        let dist = bfs_distances(g, v, avoid);
        let mut worst = 0;
        let mut reach_all = true;
        for u in g.nodes() {
            if u != v && !blocked(u) {
                let d = dist[u as usize];
                if d == INFINITY {
                    reach_all = false;
                    break;
                }
                worst = worst.max(d);
            }
        }
        ecc[v as usize] = if reach_all { worst } else { INFINITY };
    }
    ecc
}

/// Diameter of the non-avoided subgraph, or `None` if it is disconnected.
/// At most one surviving node yields `Some(0)`.
///
/// # Example
///
/// ```
/// use ftr_graph::{gen, traversal};
///
/// # fn main() -> Result<(), ftr_graph::GraphError> {
/// let g = gen::hypercube(3)?;
/// assert_eq!(traversal::diameter(&g, None), Some(3));
/// # Ok(())
/// # }
/// ```
pub fn diameter(g: &Graph, avoid: Option<&NodeSet>) -> Option<u32> {
    let blocked = |v: Node| avoid.is_some_and(|a| a.contains(v));
    let mut best = 0;
    for v in g.nodes() {
        if blocked(v) {
            continue;
        }
        let dist = bfs_distances(g, v, avoid);
        for u in g.nodes() {
            if u != v && !blocked(u) {
                let d = dist[u as usize];
                if d == INFINITY {
                    return None;
                }
                best = best.max(d);
            }
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn bfs_on_path_graph() {
        let g = gen::path_graph(4).unwrap();
        assert_eq!(bfs_distances(&g, 0, None), vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_avoiding_cut_node_disconnects() {
        let g = gen::path_graph(5).unwrap();
        let avoid = NodeSet::from_nodes(5, [2]);
        let d = bfs_distances(&g, 0, Some(&avoid));
        assert_eq!(d, vec![0, 1, INFINITY, INFINITY, INFINITY]);
    }

    #[test]
    fn bfs_from_avoided_source_unreachable() {
        let g = gen::cycle(4).unwrap();
        let avoid = NodeSet::from_nodes(4, [0]);
        assert!(bfs_distances(&g, 0, Some(&avoid))
            .iter()
            .all(|&d| d == INFINITY));
    }

    #[test]
    fn distance_symmetric_on_undirected() {
        let g = gen::cycle(7).unwrap();
        for u in 0..7 {
            for v in 0..7 {
                assert_eq!(distance(&g, u, v, None), distance(&g, v, u, None));
            }
        }
    }

    #[test]
    fn shortest_path_is_shortest_and_valid() {
        let g = gen::torus(4, 4).unwrap();
        for u in 0..16 {
            let dist = bfs_distances(&g, u, None);
            for v in 0..16 {
                let p = shortest_path(&g, u, v, None).unwrap();
                assert_eq!(p.len() as u32, dist[v as usize]);
                p.validate_in(&g).unwrap();
                assert_eq!(p.source(), u);
                assert_eq!(p.target(), v);
            }
        }
    }

    #[test]
    fn shortest_path_none_when_separated() {
        let g = gen::path_graph(3).unwrap();
        let avoid = NodeSet::from_nodes(3, [1]);
        assert!(shortest_path(&g, 0, 2, Some(&avoid)).is_none());
    }

    #[test]
    fn shortest_path_to_self_is_singleton() {
        let g = gen::cycle(4).unwrap();
        let p = shortest_path(&g, 2, 2, None).unwrap();
        assert_eq!(p.nodes(), &[2]);
    }

    #[test]
    fn connectivity_with_and_without_faults() {
        let g = gen::cycle(6).unwrap();
        assert!(is_connected(&g, None));
        // removing one node of a cycle keeps it connected
        assert!(is_connected(&g, Some(&NodeSet::from_nodes(6, [0]))));
        // removing two opposite nodes disconnects it
        assert!(!is_connected(&g, Some(&NodeSet::from_nodes(6, [0, 3]))));
    }

    #[test]
    fn all_nodes_avoided_counts_connected() {
        let g = gen::path_graph(2).unwrap();
        assert!(is_connected(&g, Some(&NodeSet::from_nodes(2, [0, 1]))));
    }

    #[test]
    fn components_labelled() {
        let g = gen::path_graph(5).unwrap();
        let avoid = NodeSet::from_nodes(5, [2]);
        let (count, labels) = connected_components(&g, Some(&avoid));
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(labels[2], u32::MAX);
    }

    #[test]
    fn empty_graph_components() {
        let g = Graph::new(0);
        let (count, labels) = connected_components(&g, None);
        assert_eq!(count, 0);
        assert!(labels.is_empty());
    }

    #[test]
    fn diameter_of_known_graphs() {
        assert_eq!(diameter(&gen::cycle(8).unwrap(), None), Some(4));
        assert_eq!(diameter(&gen::complete(5).unwrap(), None), Some(1));
        assert_eq!(diameter(&gen::path_graph(6).unwrap(), None), Some(5));
        assert_eq!(diameter(&gen::hypercube(4).unwrap(), None), Some(4));
    }

    #[test]
    fn diameter_none_when_disconnected() {
        let g = Graph::new(3); // no edges
        assert_eq!(diameter(&g, None), None);
        let avoid = NodeSet::from_nodes(3, [0, 1]);
        assert_eq!(diameter(&g, Some(&avoid)), Some(0));
    }

    #[test]
    fn eccentricities_match_diameter() {
        let g = gen::torus(3, 5).unwrap();
        let ecc = eccentricities(&g, None);
        let diam = diameter(&g, None).unwrap();
        assert_eq!(*ecc.iter().max().unwrap(), diam);
    }

    #[test]
    fn eccentricity_of_avoided_is_infinite() {
        let g = gen::cycle(4).unwrap();
        let avoid = NodeSet::from_nodes(4, [1]);
        let ecc = eccentricities(&g, Some(&avoid));
        assert_eq!(ecc[1], INFINITY);
        assert_ne!(ecc[0], INFINITY);
    }
}

//! Feature-gated BFS counters for the observability layer.
//!
//! Compiled only under the `obs-counters` feature: with it disabled the
//! statics (and the counting code in the BFS kernel) do not exist, so
//! the default build pays nothing. With it enabled the cost is one
//! relaxed atomic add per field per [`crate::BitMatrix`] eccentricity
//! call — never one per frontier word or per level.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Bit-parallel BFS invocations (one per eccentricity evaluation).
pub static BFS_CALLS: AtomicU64 = AtomicU64::new(0);
/// Total BFS levels expanded (frontier iterations) across all calls.
pub static BFS_LEVELS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of [`BFS_CALLS`].
pub fn bfs_calls() -> u64 {
    BFS_CALLS.load(Relaxed)
}

/// Snapshot of [`BFS_LEVELS`].
pub fn bfs_levels() -> u64 {
    BFS_LEVELS.load(Relaxed)
}

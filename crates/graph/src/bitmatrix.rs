use std::fmt;

use crate::{Node, NodeSet};

/// A dense directed adjacency matrix packed into `u64` words.
///
/// `BitMatrix` is the data-parallel counterpart of [`crate::DiGraph`]:
/// row `u` is a bitset of out-neighbors, so one BFS frontier expansion is
/// a row-OR over words instead of a pointer-chasing adjacency-list walk.
/// The compiled surviving-graph engine keeps the current surviving route
/// graph in this form and re-measures its diameter after every fault
/// toggle.
///
/// # Example
///
/// ```
/// use ftr_graph::BitMatrix;
///
/// let mut m = BitMatrix::new(3);
/// m.set(0, 1);
/// m.set(1, 2);
/// m.set(2, 0);
/// assert_eq!(m.diameter(None), Some(2)); // directed triangle
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    /// Words per row.
    stride: usize,
    rows: Vec<u64>,
}

impl BitMatrix {
    /// Creates an empty (arcless) matrix on `n` nodes.
    pub fn new(n: usize) -> Self {
        let stride = n.div_ceil(64);
        BitMatrix {
            n,
            stride,
            rows: vec![0; n * stride],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Words per row (shared by compatible alive-masks).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Sets the arc `u → v`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn set(&mut self, u: Node, v: Node) {
        let (row, word, bit) = self.locate(u, v);
        self.rows[row * self.stride + word] |= 1u64 << bit;
    }

    /// Clears the arc `u → v`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn clear(&mut self, u: Node, v: Node) {
        let (row, word, bit) = self.locate(u, v);
        self.rows[row * self.stride + word] &= !(1u64 << bit);
    }

    /// Returns `true` if the arc `u → v` is present. Out-of-range
    /// arguments yield `false`.
    pub fn has(&self, u: Node, v: Node) -> bool {
        let (u, v) = (u as usize, v as usize);
        u < self.n && v < self.n && self.rows[u * self.stride + v / 64] & (1u64 << (v % 64)) != 0
    }

    /// The out-neighbor bitset of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn row(&self, u: Node) -> &[u64] {
        let u = u as usize;
        assert!(u < self.n, "node {u} out of range for {} nodes", self.n);
        &self.rows[u * self.stride..(u + 1) * self.stride]
    }

    /// Number of arcs (popcount over all rows).
    pub fn arc_count(&self) -> usize {
        self.rows.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Makes `self` an exact copy of `src`, reusing the existing word
    /// buffer when it is large enough — the scratch-matrix primitive
    /// behind the compiled engine's per-fault-set evaluation, which would
    /// otherwise allocate a fresh matrix per call.
    pub fn copy_from(&mut self, src: &BitMatrix) {
        self.n = src.n;
        self.stride = src.stride;
        self.rows.clone_from(&src.rows);
    }

    fn locate(&self, u: Node, v: Node) -> (usize, usize, u32) {
        let (u, v) = (u as usize, v as usize);
        assert!(
            u < self.n && v < self.n,
            "arc ({u}, {v}) out of range for {} nodes",
            self.n
        );
        (u, v / 64, (v % 64) as u32)
    }

    /// The word-packed set of nodes *not* in `avoid` (the "alive" mask
    /// used by the masked traversals).
    fn alive_mask(&self, avoid: Option<&NodeSet>) -> Vec<u64> {
        let mut alive = vec![!0u64; self.stride];
        // Mask off the bits beyond n in the last word.
        if self.stride > 0 {
            let tail = self.n % 64;
            if tail != 0 {
                alive[self.stride - 1] = (1u64 << tail) - 1;
            }
        }
        if let Some(avoid) = avoid {
            for (a, f) in alive.iter_mut().zip(avoid.words()) {
                *a &= !f;
            }
        }
        alive
    }

    /// BFS eccentricity of `src` restricted to nodes outside `avoid`:
    /// returns `(max distance, reached all alive nodes?)`.
    ///
    /// Each level is one frontier expansion: OR together the rows of the
    /// frontier's members, mask with the not-yet-visited alive nodes, and
    /// repeat — `O(n / 64)` words of work per frontier member per level.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range or `src` itself is avoided.
    pub fn masked_eccentricity(&self, src: Node, avoid: Option<&NodeSet>) -> (u32, bool) {
        let alive = self.alive_mask(avoid);
        self.eccentricity_in(src, &alive)
    }

    fn eccentricity_in(&self, src: Node, alive: &[u64]) -> (u32, bool) {
        let s = src as usize;
        assert!(s < self.n, "source {s} out of range");
        assert!(
            alive[s / 64] & (1u64 << (s % 64)) != 0,
            "source {s} is avoided"
        );
        let mut visited = vec![0u64; self.stride];
        let mut frontier = vec![0u64; self.stride];
        visited[s / 64] |= 1u64 << (s % 64);
        frontier[s / 64] |= 1u64 << (s % 64);
        let mut next = vec![0u64; self.stride];
        let mut depth = 0;
        loop {
            next.fill(0);
            for (wi, &fw) in frontier.iter().enumerate() {
                let mut bits = fw;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let row = &self.rows[(wi * 64 + b) * self.stride..];
                    for (nw, &rw) in next.iter_mut().zip(row) {
                        *nw |= rw;
                    }
                }
            }
            let mut any = false;
            for i in 0..self.stride {
                next[i] &= alive[i] & !visited[i];
                visited[i] |= next[i];
                any |= next[i] != 0;
            }
            if !any {
                break;
            }
            depth += 1;
            std::mem::swap(&mut frontier, &mut next);
        }
        let complete = visited.iter().zip(alive).all(|(v, a)| v & a == *a);
        (depth, complete)
    }

    /// The diameter over ordered pairs of nodes outside `avoid`, or
    /// `None` if some such node cannot reach another — with early exit on
    /// the first disconnected source.
    ///
    /// Returns `Some(0)` when at most one node survives. This is the
    /// bit-parallel equivalent of [`crate::DiGraph::diameter`] and the
    /// inner loop of the `(d, f)`-tolerance verifier.
    pub fn diameter(&self, avoid: Option<&NodeSet>) -> Option<u32> {
        let alive = self.alive_mask(avoid);
        let mut best = 0;
        for wi in 0..self.stride {
            let mut bits = alive[wi];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let src = (wi * 64 + b) as Node;
                let (ecc, complete) = self.eccentricity_in(src, &alive);
                if !complete {
                    return None;
                }
                best = best.max(ecc);
            }
        }
        Some(best)
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BitMatrix")
            .field("nodes", &self.n)
            .field("arcs", &self.arc_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiGraph;

    fn triangle() -> BitMatrix {
        let mut m = BitMatrix::new(3);
        m.set(0, 1);
        m.set(1, 2);
        m.set(2, 0);
        m
    }

    #[test]
    fn set_clear_has() {
        let mut m = BitMatrix::new(70);
        m.set(0, 65);
        assert!(m.has(0, 65));
        assert!(!m.has(65, 0));
        m.clear(0, 65);
        assert!(!m.has(0, 65));
        assert_eq!(m.arc_count(), 0);
        assert!(!m.has(200, 0), "out of range is absent");
    }

    #[test]
    fn row_exposes_neighbors() {
        let mut m = BitMatrix::new(70);
        m.set(1, 0);
        m.set(1, 69);
        assert_eq!(m.row(1)[0], 1);
        assert_eq!(m.row(1)[1], 1 << 5);
    }

    #[test]
    fn diameter_of_directed_cycle() {
        assert_eq!(triangle().diameter(None), Some(2));
    }

    #[test]
    fn diameter_disconnected_is_none() {
        let mut m = BitMatrix::new(2);
        m.set(0, 1);
        assert_eq!(m.diameter(None), None);
    }

    #[test]
    fn diameter_with_avoid_shrinks_node_set() {
        let mut m = BitMatrix::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 2), (2, 1), (1, 0)] {
            m.set(u, v);
        }
        assert_eq!(m.diameter(None), Some(3));
        let avoid = NodeSet::from_nodes(4, [3]);
        assert_eq!(m.diameter(Some(&avoid)), Some(2));
    }

    #[test]
    fn diameter_single_survivor_is_zero() {
        let avoid = NodeSet::from_nodes(3, [0, 1]);
        assert_eq!(triangle().diameter(Some(&avoid)), Some(0));
    }

    #[test]
    fn diameter_empty_matrix() {
        assert_eq!(BitMatrix::new(0).diameter(None), Some(0));
        let all = NodeSet::from_nodes(3, [0, 1, 2]);
        assert_eq!(triangle().diameter(Some(&all)), Some(0));
    }

    #[test]
    fn masked_eccentricity_reports_completeness() {
        let m = triangle();
        let (ecc, complete) = m.masked_eccentricity(0, None);
        assert_eq!((ecc, complete), (2, true));
        let mut broken = triangle();
        broken.clear(1, 2);
        let (_, complete) = broken.masked_eccentricity(1, None);
        assert!(!complete);
    }

    #[test]
    fn agrees_with_digraph_diameter_on_random_graphs() {
        // Deterministic pseudo-random arc sets across word boundaries.
        for seed in 0..20u64 {
            let n = 66 + (seed as usize % 5);
            let mut m = BitMatrix::new(n);
            let mut d = DiGraph::new(n);
            let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
            for _ in 0..6 * n {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = ((x >> 16) % n as u64) as Node;
                let v = ((x >> 40) % n as u64) as Node;
                if u != v {
                    m.set(u, v);
                    d.add_arc(u, v).expect("in range");
                }
            }
            let avoid = NodeSet::from_nodes(n, [(seed % n as u64) as Node]);
            assert_eq!(m.diameter(None), d.diameter(None), "seed {seed}");
            assert_eq!(
                m.diameter(Some(&avoid)),
                d.diameter(Some(&avoid)),
                "seed {seed} with avoid"
            );
        }
    }
}

use std::cell::RefCell;
use std::fmt;

use crate::{Node, NodeSet};

/// Reusable word buffers for the masked BFS kernels.
///
/// One eccentricity sweep needs four `stride`-word bitsets (alive mask,
/// visited set, current frontier, next frontier). Allocating them per
/// call dominates the cost of small-graph BFS, so the hot entry points
/// ([`BitMatrix::diameter_with`], [`BitMatrix::eccentricity_with`]) take
/// a `&mut BfsScratch` that is grown once and reused across calls; the
/// convenience wrappers route through a thread-local instance.
#[derive(Debug, Default)]
pub struct BfsScratch {
    alive: Vec<u64>,
    visited: Vec<u64>,
    frontier: Vec<u64>,
    next: Vec<u64>,
}

impl BfsScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        BfsScratch::default()
    }

    fn fit(&mut self, stride: usize) {
        self.alive.resize(stride, 0);
        self.visited.resize(stride, 0);
        self.frontier.resize(stride, 0);
        self.next.resize(stride, 0);
    }
}

thread_local! {
    static BFS_SCRATCH: RefCell<BfsScratch> = RefCell::new(BfsScratch::new());
}

/// ORs `row` into `acc`, four words per iteration.
///
/// This is the BFS frontier expansion's inner loop; the unrolled form is
/// branch-free over each 256-bit group and lets the compiler keep the
/// accumulator words in registers (or vectorize) instead of a dependent
/// one-word-at-a-time chain.
#[inline]
fn or_into(acc: &mut [u64], row: &[u64]) {
    debug_assert_eq!(acc.len(), row.len());
    let mut a4 = acc.chunks_exact_mut(4);
    let mut r4 = row.chunks_exact(4);
    for (a, r) in (&mut a4).zip(&mut r4) {
        a[0] |= r[0];
        a[1] |= r[1];
        a[2] |= r[2];
        a[3] |= r[3];
    }
    for (a, r) in a4.into_remainder().iter_mut().zip(r4.remainder()) {
        *a |= r;
    }
}

/// A dense directed adjacency matrix packed into `u64` words.
///
/// `BitMatrix` is the data-parallel counterpart of [`crate::DiGraph`]:
/// row `u` is a bitset of out-neighbors, so one BFS frontier expansion is
/// a row-OR over words instead of a pointer-chasing adjacency-list walk.
/// The compiled surviving-graph engine keeps the current surviving route
/// graph in this form and re-measures its diameter after every fault
/// toggle.
///
/// # Example
///
/// ```
/// use ftr_graph::BitMatrix;
///
/// let mut m = BitMatrix::new(3);
/// m.set(0, 1);
/// m.set(1, 2);
/// m.set(2, 0);
/// assert_eq!(m.diameter(None), Some(2)); // directed triangle
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    /// Words per row.
    stride: usize,
    rows: Vec<u64>,
}

impl BitMatrix {
    /// Creates an empty (arcless) matrix on `n` nodes.
    pub fn new(n: usize) -> Self {
        let stride = n.div_ceil(64);
        BitMatrix {
            n,
            stride,
            rows: vec![0; n * stride],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Words per row (shared by compatible alive-masks).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Sets the arc `u → v`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn set(&mut self, u: Node, v: Node) {
        let (row, word, bit) = self.locate(u, v);
        self.rows[row * self.stride + word] |= 1u64 << bit;
    }

    /// Clears the arc `u → v`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn clear(&mut self, u: Node, v: Node) {
        let (row, word, bit) = self.locate(u, v);
        self.rows[row * self.stride + word] &= !(1u64 << bit);
    }

    /// Returns `true` if the arc `u → v` is present. Out-of-range
    /// arguments yield `false`.
    pub fn has(&self, u: Node, v: Node) -> bool {
        let (u, v) = (u as usize, v as usize);
        u < self.n && v < self.n && self.rows[u * self.stride + v / 64] & (1u64 << (v % 64)) != 0
    }

    /// The out-neighbor bitset of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn row(&self, u: Node) -> &[u64] {
        let u = u as usize;
        assert!(u < self.n, "node {u} out of range for {} nodes", self.n);
        &self.rows[u * self.stride..(u + 1) * self.stride]
    }

    /// Number of arcs (popcount over all rows).
    pub fn arc_count(&self) -> usize {
        self.rows.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Makes `self` an exact copy of `src`, reusing the existing word
    /// buffer when it is large enough — the scratch-matrix primitive
    /// behind the compiled engine's per-fault-set evaluation, which would
    /// otherwise allocate a fresh matrix per call.
    pub fn copy_from(&mut self, src: &BitMatrix) {
        self.n = src.n;
        self.stride = src.stride;
        self.rows.clone_from(&src.rows);
    }

    fn locate(&self, u: Node, v: Node) -> (usize, usize, u32) {
        let (u, v) = (u as usize, v as usize);
        assert!(
            u < self.n && v < self.n,
            "arc ({u}, {v}) out of range for {} nodes",
            self.n
        );
        (u, v / 64, (v % 64) as u32)
    }

    /// Writes the word-packed set of nodes *not* in `avoid` (the "alive"
    /// mask used by the masked traversals) into `out`.
    fn alive_mask_into(&self, avoid: Option<&NodeSet>, out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.stride);
        match avoid {
            Some(avoid) => {
                // Missing high words of a smaller overlay count as
                // fault-free, matching the pre-batch semantics.
                let words = avoid.words();
                let common = words.len().min(self.stride);
                let mut o4 = out[..common].chunks_exact_mut(4);
                let mut f4 = words[..common].chunks_exact(4);
                for (o, f) in (&mut o4).zip(&mut f4) {
                    o[0] = !f[0];
                    o[1] = !f[1];
                    o[2] = !f[2];
                    o[3] = !f[3];
                }
                for (o, f) in o4.into_remainder().iter_mut().zip(f4.remainder()) {
                    *o = !f;
                }
                out[common..].fill(!0u64);
            }
            None => out.fill(!0u64),
        }
        // Mask off the bits beyond n in the last word.
        if self.stride > 0 {
            let tail = self.n % 64;
            if tail != 0 {
                out[self.stride - 1] &= (1u64 << tail) - 1;
            }
        }
    }

    /// BFS eccentricity of `src` restricted to nodes outside `avoid`:
    /// returns `(max distance, reached all alive nodes?)`.
    ///
    /// Each level is one frontier expansion: OR together the rows of the
    /// frontier's members, mask with the not-yet-visited alive nodes, and
    /// repeat — `O(n / 64)` words of work per frontier member per level.
    ///
    /// Allocation-free across calls via a thread-local [`BfsScratch`];
    /// pass an explicit scratch with [`BitMatrix::eccentricity_with`] to
    /// control buffer reuse yourself.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range or `src` itself is avoided.
    pub fn masked_eccentricity(&self, src: Node, avoid: Option<&NodeSet>) -> (u32, bool) {
        BFS_SCRATCH.with(|s| self.eccentricity_with(src, avoid, &mut s.borrow_mut()))
    }

    /// [`BitMatrix::masked_eccentricity`] against caller-owned scratch
    /// buffers (no thread-local traffic, no allocation once grown).
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range or `src` itself is avoided.
    pub fn eccentricity_with(
        &self,
        src: Node,
        avoid: Option<&NodeSet>,
        scratch: &mut BfsScratch,
    ) -> (u32, bool) {
        scratch.fit(self.stride);
        self.alive_mask_into(avoid, &mut scratch.alive);
        let BfsScratch {
            alive,
            visited,
            frontier,
            next,
        } = scratch;
        self.eccentricity_in(src, alive, visited, frontier, next)
    }

    fn eccentricity_in(
        &self,
        src: Node,
        alive: &[u64],
        visited: &mut [u64],
        frontier: &mut Vec<u64>,
        next: &mut Vec<u64>,
    ) -> (u32, bool) {
        let s = src as usize;
        assert!(s < self.n, "source {s} out of range");
        assert!(
            alive[s / 64] & (1u64 << (s % 64)) != 0,
            "source {s} is avoided"
        );
        visited.fill(0);
        frontier.fill(0);
        visited[s / 64] |= 1u64 << (s % 64);
        frontier[s / 64] |= 1u64 << (s % 64);
        let mut depth = 0;
        loop {
            next.fill(0);
            for (wi, &fw) in frontier.iter().enumerate() {
                let mut bits = fw;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let row =
                        &self.rows[(wi * 64 + b) * self.stride..(wi * 64 + b + 1) * self.stride];
                    or_into(next, row);
                }
            }
            // Advance: keep only unvisited alive nodes, fold them into
            // the visited set, and accumulate "any new" branch-free.
            let mut newly = 0u64;
            for i in 0..self.stride {
                let nw = next[i] & alive[i] & !visited[i];
                next[i] = nw;
                visited[i] |= nw;
                newly |= nw;
            }
            if newly == 0 {
                break;
            }
            depth += 1;
            std::mem::swap(frontier, next);
        }
        let complete = visited.iter().zip(alive).all(|(v, a)| v & a == *a);
        #[cfg(feature = "obs-counters")]
        {
            use std::sync::atomic::Ordering::Relaxed;
            crate::obs::BFS_CALLS.fetch_add(1, Relaxed);
            crate::obs::BFS_LEVELS.fetch_add(u64::from(depth), Relaxed);
        }
        (depth, complete)
    }

    /// The diameter over ordered pairs of nodes outside `avoid`, or
    /// `None` if some such node cannot reach another — with early exit on
    /// the first disconnected source.
    ///
    /// Returns `Some(0)` when at most one node survives. This is the
    /// bit-parallel equivalent of [`crate::DiGraph::diameter`] and the
    /// inner loop of the `(d, f)`-tolerance verifier. Scratch buffers
    /// come from a thread-local [`BfsScratch`], so repeated calls do not
    /// allocate; use [`BitMatrix::diameter_with`] to supply your own.
    pub fn diameter(&self, avoid: Option<&NodeSet>) -> Option<u32> {
        BFS_SCRATCH.with(|s| self.diameter_with(avoid, &mut s.borrow_mut()))
    }

    /// [`BitMatrix::diameter`] against caller-owned scratch buffers —
    /// the batched-evaluation entry point used by the compiled engine.
    pub fn diameter_with(&self, avoid: Option<&NodeSet>, scratch: &mut BfsScratch) -> Option<u32> {
        scratch.fit(self.stride);
        self.alive_mask_into(avoid, &mut scratch.alive);
        let BfsScratch {
            alive,
            visited,
            frontier,
            next,
        } = scratch;
        let mut best = 0;
        for wi in 0..self.stride {
            let mut bits = alive[wi];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let src = (wi * 64 + b) as Node;
                let (ecc, complete) = self.eccentricity_in(src, alive, visited, frontier, next);
                if !complete {
                    return None;
                }
                best = best.max(ecc);
            }
        }
        Some(best)
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BitMatrix")
            .field("nodes", &self.n)
            .field("arcs", &self.arc_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiGraph;

    fn triangle() -> BitMatrix {
        let mut m = BitMatrix::new(3);
        m.set(0, 1);
        m.set(1, 2);
        m.set(2, 0);
        m
    }

    #[test]
    fn set_clear_has() {
        let mut m = BitMatrix::new(70);
        m.set(0, 65);
        assert!(m.has(0, 65));
        assert!(!m.has(65, 0));
        m.clear(0, 65);
        assert!(!m.has(0, 65));
        assert_eq!(m.arc_count(), 0);
        assert!(!m.has(200, 0), "out of range is absent");
    }

    #[test]
    fn row_exposes_neighbors() {
        let mut m = BitMatrix::new(70);
        m.set(1, 0);
        m.set(1, 69);
        assert_eq!(m.row(1)[0], 1);
        assert_eq!(m.row(1)[1], 1 << 5);
    }

    #[test]
    fn diameter_of_directed_cycle() {
        assert_eq!(triangle().diameter(None), Some(2));
    }

    #[test]
    fn diameter_disconnected_is_none() {
        let mut m = BitMatrix::new(2);
        m.set(0, 1);
        assert_eq!(m.diameter(None), None);
    }

    #[test]
    fn diameter_with_avoid_shrinks_node_set() {
        let mut m = BitMatrix::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 2), (2, 1), (1, 0)] {
            m.set(u, v);
        }
        assert_eq!(m.diameter(None), Some(3));
        let avoid = NodeSet::from_nodes(4, [3]);
        assert_eq!(m.diameter(Some(&avoid)), Some(2));
    }

    #[test]
    fn diameter_single_survivor_is_zero() {
        let avoid = NodeSet::from_nodes(3, [0, 1]);
        assert_eq!(triangle().diameter(Some(&avoid)), Some(0));
    }

    #[test]
    fn diameter_empty_matrix() {
        assert_eq!(BitMatrix::new(0).diameter(None), Some(0));
        let all = NodeSet::from_nodes(3, [0, 1, 2]);
        assert_eq!(triangle().diameter(Some(&all)), Some(0));
    }

    #[test]
    fn masked_eccentricity_reports_completeness() {
        let m = triangle();
        let (ecc, complete) = m.masked_eccentricity(0, None);
        assert_eq!((ecc, complete), (2, true));
        let mut broken = triangle();
        broken.clear(1, 2);
        let (_, complete) = broken.masked_eccentricity(1, None);
        assert!(!complete);
    }

    #[test]
    fn agrees_with_digraph_diameter_on_random_graphs() {
        // Deterministic pseudo-random arc sets across word boundaries.
        for seed in 0..20u64 {
            let n = 66 + (seed as usize % 5);
            let mut m = BitMatrix::new(n);
            let mut d = DiGraph::new(n);
            let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
            for _ in 0..6 * n {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = ((x >> 16) % n as u64) as Node;
                let v = ((x >> 40) % n as u64) as Node;
                if u != v {
                    m.set(u, v);
                    d.add_arc(u, v).expect("in range");
                }
            }
            let avoid = NodeSet::from_nodes(n, [(seed % n as u64) as Node]);
            assert_eq!(m.diameter(None), d.diameter(None), "seed {seed}");
            assert_eq!(
                m.diameter(Some(&avoid)),
                d.diameter(Some(&avoid)),
                "seed {seed} with avoid"
            );
        }
    }
}

use std::fmt;

use crate::{GraphError, Node, NodeSet};

/// An undirected simple graph with sorted adjacency lists.
///
/// This is the paper's model of a communication network: nodes are
/// processors, edges are bidirectional links. Graphs are conceptually
/// immutable once built — fault tolerance analysis never removes nodes,
/// it passes a [`NodeSet`] of faulty nodes alongside the graph instead
/// (see [`crate::traversal`]).
///
/// Node identifiers are `0..n` where `n` is [`Graph::node_count`].
///
/// # Example
///
/// ```
/// use ftr_graph::Graph;
///
/// # fn main() -> Result<(), ftr_graph::GraphError> {
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1)?;
/// g.add_edge(1, 2)?;
/// g.add_edge(2, 3)?;
/// g.add_edge(3, 0)?;
/// assert_eq!(g.edge_count(), 4);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert!(g.has_edge(3, 0));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Graph {
    adj: Vec<Vec<Node>>,
    edge_count: usize,
}

impl Graph {
    /// Creates an edgeless graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Builds a graph on `n` nodes from an edge list.
    ///
    /// Duplicate edges are ignored (the graph stays simple).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`]
    /// if an edge is invalid.
    ///
    /// # Example
    ///
    /// ```
    /// use ftr_graph::Graph;
    /// # fn main() -> Result<(), ftr_graph::GraphError> {
    /// let g = Graph::from_edges(3, [(0, 1), (1, 2), (1, 2)])?;
    /// assert_eq!(g.edge_count(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (Node, Node)>,
    ) -> Result<Self, GraphError> {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// Returns `Ok(true)` if the edge was new and `Ok(false)` if it was
    /// already present (the graph is kept simple).
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfRange`] if `u` or `v` is not a node.
    /// * [`GraphError::SelfLoop`] if `u == v`.
    pub fn add_edge(&mut self, u: Node, v: Node) -> Result<bool, GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let pos_u = match self.adj[u as usize].binary_search(&v) {
            Ok(_) => return Ok(false),
            Err(pos) => pos,
        };
        self.adj[u as usize].insert(pos_u, v);
        let pos_v = self.adj[v as usize]
            .binary_search(&u)
            .expect_err("adjacency lists out of sync");
        self.adj[v as usize].insert(pos_v, u);
        self.edge_count += 1;
        Ok(true)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if `{u, v}` is an edge. Out-of-range arguments and
    /// `u == v` simply yield `false`.
    pub fn has_edge(&self, u: Node, v: Node) -> bool {
        (u as usize) < self.adj.len() && self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// The sorted neighbor list Γ(u) of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a node of the graph.
    pub fn neighbors(&self, u: Node) -> &[Node] {
        &self.adj[u as usize]
    }

    /// The neighbors of `u` as a freshly allocated [`NodeSet`].
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a node of the graph.
    pub fn neighbor_set(&self, u: Node) -> NodeSet {
        NodeSet::from_nodes(self.node_count(), self.neighbors(u).iter().copied())
    }

    /// The degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a node of the graph.
    pub fn degree(&self, u: Node) -> usize {
        self.adj[u as usize].len()
    }

    /// The maximum degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The minimum degree, or 0 for the empty graph.
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Average degree `2m / n`, or 0.0 for the empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.adj.len() as f64
        }
    }

    /// Iterates over all nodes `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        0..self.adj.len() as Node
    }

    /// Iterates over all undirected edges as pairs `(u, v)` with `u < v`.
    ///
    /// # Example
    ///
    /// ```
    /// use ftr_graph::Graph;
    /// # fn main() -> Result<(), ftr_graph::GraphError> {
    /// let g = Graph::from_edges(3, [(2, 1), (0, 2)])?;
    /// assert_eq!(g.edges().collect::<Vec<_>>(), vec![(0, 2), (1, 2)]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn edges(&self) -> impl Iterator<Item = (Node, Node)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as Node;
            nbrs.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Returns `true` if the graph is complete (every pair adjacent).
    pub fn is_complete(&self) -> bool {
        let n = self.node_count();
        n <= 1 || self.edge_count == n * (n - 1) / 2
    }

    /// Returns the induced subgraph on the nodes *not* in `removed`,
    /// along with the mapping from new node ids to original ids.
    ///
    /// This is used by tests as an independent cross-check of the fault
    /// overlay machinery; production code paths use overlays instead.
    ///
    /// # Panics
    ///
    /// Panics if `removed` was built for a different node count.
    pub fn remove_nodes(&self, removed: &NodeSet) -> (Graph, Vec<Node>) {
        assert_eq!(removed.capacity(), self.node_count());
        let mut old_to_new = vec![Node::MAX; self.node_count()];
        let mut new_to_old = Vec::new();
        for v in self.nodes() {
            if !removed.contains(v) {
                old_to_new[v as usize] = new_to_old.len() as Node;
                new_to_old.push(v);
            }
        }
        let mut g = Graph::new(new_to_old.len());
        for (u, v) in self.edges() {
            if !removed.contains(u) && !removed.contains(v) {
                g.add_edge(old_to_new[u as usize], old_to_new[v as usize])
                    .expect("mapped edge is valid");
            }
        }
        (g, new_to_old)
    }

    fn check_node(&self, v: Node) -> Result<(), GraphError> {
        if (v as usize) < self.adj.len() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: v,
                n: self.adj.len(),
            })
        }
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph on {} nodes with {} edges",
            self.node_count(),
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_graph_is_edgeless() {
        let g = Graph::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn add_edge_is_symmetric_and_idempotent() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(0, 2).unwrap());
        assert!(!g.add_edge(2, 0).unwrap());
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Graph::new(3);
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = Graph::new(3);
        assert_eq!(
            g.add_edge(0, 3),
            Err(GraphError::NodeOutOfRange { node: 3, n: 3 })
        );
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
        assert_eq!(g.degree(2), 4);
    }

    #[test]
    fn edges_iterator_normalized() {
        let g = Graph::from_edges(4, [(3, 1), (0, 1)]).unwrap();
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(0, 1), (1, 3)]);
    }

    #[test]
    fn degree_statistics() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn is_complete_detects() {
        let g = Graph::from_edges(3, [(0, 1), (0, 2), (1, 2)]).unwrap();
        assert!(g.is_complete());
        let h = Graph::from_edges(3, [(0, 1), (0, 2)]).unwrap();
        assert!(!h.is_complete());
        assert!(Graph::new(1).is_complete());
        assert!(Graph::new(0).is_complete());
    }

    #[test]
    fn remove_nodes_builds_induced_subgraph() {
        // square 0-1-2-3-0 with diagonal 0-2, remove node 0
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let removed = NodeSet::from_nodes(4, [0]);
        let (h, map) = g.remove_nodes(&removed);
        assert_eq!(h.node_count(), 3);
        assert_eq!(map, vec![1, 2, 3]);
        assert_eq!(h.edge_count(), 2); // 1-2 and 2-3
        assert!(h.has_edge(0, 1)); // old 1-2
        assert!(h.has_edge(1, 2)); // old 2-3
    }

    #[test]
    fn neighbor_set_matches_neighbors() {
        let g = Graph::from_edges(6, [(0, 3), (0, 5)]).unwrap();
        let s = g.neighbor_set(0);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 5]);
    }

    #[test]
    fn display_mentions_counts() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        assert_eq!(g.to_string(), "graph on 2 nodes with 1 edges");
        assert_eq!(format!("{g:?}"), "Graph { nodes: 2, edges: 1 }");
    }
}

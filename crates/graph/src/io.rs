//! Graph interchange in the standard **graph6** format.
//!
//! graph6 (McKay) is the de-facto ASCII format for small simple
//! undirected graphs, used by `nauty`, `geng`, NetworkX and friends.
//! Supporting it lets the experiment harness exchange topologies with
//! external tools (e.g. verifying a construction on graphs enumerated
//! by `geng`).
//!
//! The format: the node count `n` is encoded in 1 or 4 bytes (this
//! implementation covers `n <= 258047`, far beyond experiment sizes),
//! followed by the upper triangle of the adjacency matrix in
//! column-major order, packed 6 bits per byte with an offset of 63.

use crate::{Graph, GraphError, Node};

/// Serializes `g` to a graph6 string.
///
/// # Example
///
/// ```
/// use ftr_graph::{gen, io};
///
/// # fn main() -> Result<(), ftr_graph::GraphError> {
/// // K4 in graph6 is the well-known "C~".
/// let g = gen::complete(4)?;
/// assert_eq!(io::to_graph6(&g), "C~");
/// # Ok(())
/// # }
/// ```
pub fn to_graph6(g: &Graph) -> String {
    let n = g.node_count();
    let mut out = String::new();
    // node count
    if n <= 62 {
        out.push((n as u8 + 63) as char);
    } else {
        out.push(126 as char);
        for shift in [12, 6, 0] {
            out.push((((n >> shift) & 0x3f) as u8 + 63) as char);
        }
    }
    // upper triangle, column-major: bit for (i, j) with i < j ordered by
    // (j, i)
    let mut bits: Vec<bool> = Vec::with_capacity(n.saturating_sub(1) * n / 2);
    for j in 1..n {
        for i in 0..j {
            bits.push(g.has_edge(i as Node, j as Node));
        }
    }
    for chunk in bits.chunks(6) {
        let mut value = 0u8;
        for (k, &bit) in chunk.iter().enumerate() {
            if bit {
                value |= 1 << (5 - k);
            }
        }
        out.push((value + 63) as char);
    }
    out
}

/// Parses a graph6 string.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for malformed input
/// (bad characters, truncated triangle, out-of-range node counts).
///
/// # Example
///
/// ```
/// use ftr_graph::io;
///
/// # fn main() -> Result<(), ftr_graph::GraphError> {
/// let g = io::from_graph6("C~")?; // K4
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 6);
/// # Ok(())
/// # }
/// ```
pub fn from_graph6(s: &str) -> Result<Graph, GraphError> {
    let bytes: Vec<u8> = s.trim_end().bytes().collect();
    if bytes.is_empty() {
        return Err(GraphError::invalid("empty graph6 string"));
    }
    for &b in &bytes {
        if !(63..=126).contains(&b) {
            return Err(GraphError::invalid(format!(
                "invalid graph6 byte {b} (printable range is 63..=126)"
            )));
        }
    }
    let (n, mut pos) = if bytes[0] == 126 {
        if bytes.len() < 4 {
            return Err(GraphError::invalid("truncated graph6 node count"));
        }
        if bytes[1] == 126 {
            return Err(GraphError::invalid(
                "graph6 graphs beyond 258047 nodes are not supported",
            ));
        }
        let n = (((bytes[1] - 63) as usize) << 12)
            | (((bytes[2] - 63) as usize) << 6)
            | ((bytes[3] - 63) as usize);
        (n, 4)
    } else {
        ((bytes[0] - 63) as usize, 1)
    };
    let mut g = Graph::new(n);
    let needed_bits = n.saturating_sub(1) * n / 2;
    let needed_bytes = needed_bits.div_ceil(6);
    if bytes.len() - pos != needed_bytes {
        return Err(GraphError::invalid(format!(
            "graph6 triangle length mismatch: got {} bytes, need {needed_bytes}",
            bytes.len() - pos
        )));
    }
    let mut bit_idx = 0usize;
    let mut current = 0u8;
    let mut remaining = 0u8;
    for j in 1..n {
        for i in 0..j {
            if remaining == 0 {
                current = bytes[pos] - 63;
                pos += 1;
                remaining = 6;
            }
            if current & (1 << (remaining - 1)) != 0 {
                g.add_edge(i as Node, j as Node)?;
            }
            remaining -= 1;
            bit_idx += 1;
        }
    }
    debug_assert_eq!(bit_idx, needed_bits);
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn known_encodings() {
        // Canonical examples from the nauty documentation.
        assert_eq!(to_graph6(&gen::complete(4).unwrap()), "C~");
        assert_eq!(to_graph6(&Graph::new(1)), "@");
        assert_eq!(to_graph6(&Graph::new(5)), "D??");
        // path 0-1-2-3-4 is "DQc" in graph6
        let p4 = gen::path_graph(5).unwrap();
        assert_eq!(from_graph6(&to_graph6(&p4)).unwrap(), p4);
    }

    #[test]
    fn round_trip_on_families() {
        for g in [
            gen::petersen(),
            gen::cycle(9).unwrap(),
            gen::hypercube(4).unwrap(),
            gen::torus(3, 4).unwrap(),
            gen::complete_bipartite(3, 5).unwrap(),
            Graph::new(0),
            Graph::new(63), // forces nothing special (n <= 62 is 1 byte... 63 is 4)
        ] {
            let encoded = to_graph6(&g);
            let decoded = from_graph6(&encoded).unwrap();
            assert_eq!(decoded, g, "round trip failed for {g:?}");
        }
    }

    #[test]
    fn round_trip_large_n_header() {
        let g = gen::cycle(100).unwrap();
        let s = to_graph6(&g);
        assert_eq!(s.as_bytes()[0], 126);
        assert_eq!(from_graph6(&s).unwrap(), g);
    }

    #[test]
    fn round_trip_random_graphs() {
        for seed in 0..25 {
            let g = gen::gnp(17, 0.3, seed).unwrap();
            assert_eq!(from_graph6(&to_graph6(&g)).unwrap(), g, "seed {seed}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_graph6("").is_err());
        assert!(from_graph6("C").is_err()); // missing triangle bytes
        assert!(from_graph6("C~~").is_err()); // too many bytes
        assert!(from_graph6("C\x1f").is_err()); // byte below 63
        assert!(from_graph6("~").is_err()); // truncated long header
        assert!(from_graph6("~~~~~").is_err()); // >258047 marker unsupported
    }

    #[test]
    fn trailing_newline_tolerated() {
        let g = gen::petersen();
        let s = format!("{}\n", to_graph6(&g));
        assert_eq!(from_graph6(&s).unwrap(), g);
    }
}

use std::error::Error;
use std::fmt;

use crate::Node;

/// Errors produced by graph construction, validation and analysis.
///
/// # Example
///
/// ```
/// use ftr_graph::{Graph, GraphError};
///
/// let mut g = Graph::new(2);
/// assert!(matches!(g.add_edge(0, 5), Err(GraphError::NodeOutOfRange { .. })));
/// assert!(matches!(g.add_edge(1, 1), Err(GraphError::SelfLoop { .. })));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node identifier was not smaller than the graph's node count.
    NodeOutOfRange {
        /// The offending node identifier.
        node: Node,
        /// The node count of the graph.
        n: usize,
    },
    /// An edge from a node to itself was requested; the networks modelled
    /// here are simple graphs.
    SelfLoop {
        /// The node for which a self loop was requested.
        node: Node,
    },
    /// A path was constructed from an empty node sequence.
    EmptyPath,
    /// A path revisits a node; the paper's routes are simple paths.
    NonSimplePath {
        /// The first node that appears twice.
        node: Node,
    },
    /// Two consecutive path nodes are not adjacent in the graph the path
    /// was validated against.
    MissingEdge {
        /// Tail of the missing edge.
        u: Node,
        /// Head of the missing edge.
        v: Node,
    },
    /// A generator or algorithm was called with parameters outside its
    /// documented domain.
    InvalidParameter {
        /// Human-readable description of the violated requirement.
        what: String,
    },
}

impl GraphError {
    /// Convenience constructor for [`GraphError::InvalidParameter`].
    pub(crate) fn invalid(what: impl Into<String>) -> Self {
        GraphError::InvalidParameter { what: what.into() }
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self loop at node {node}"),
            GraphError::EmptyPath => write!(f, "path must contain at least one node"),
            GraphError::NonSimplePath { node } => {
                write!(f, "path visits node {node} more than once")
            }
            GraphError::MissingEdge { u, v } => {
                write!(f, "consecutive path nodes {u} and {v} are not adjacent")
            }
            GraphError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = GraphError::NodeOutOfRange { node: 7, n: 3 };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains('3'));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }

    #[test]
    fn invalid_parameter_keeps_message() {
        let e = GraphError::invalid("k must be at least 1");
        assert_eq!(e.to_string(), "invalid parameter: k must be at least 1");
    }

    #[test]
    fn self_loop_display() {
        assert_eq!(
            GraphError::SelfLoop { node: 4 }.to_string(),
            "self loop at node 4"
        );
    }

    #[test]
    fn missing_edge_display() {
        assert_eq!(
            GraphError::MissingEdge { u: 1, v: 2 }.to_string(),
            "consecutive path nodes 1 and 2 are not adjacent"
        );
    }
}

//! Generators for the network families used throughout the paper and its
//! experiments.
//!
//! The paper motivates its constructions with "graphs used as underlying
//! structures for communication networks and distributed systems, such as
//! the hypercube, and some of its bounded degree realizations, like the
//! d-way shuffle (or, extended butterfly), CCC etc." — all generated here,
//! together with the parameterised-connectivity families (Harary graphs,
//! circulants) used by the experiment sweeps and the random `G(n,p)` model
//! of Section 5.
//!
//! All random generators take an explicit seed so experiments are
//! reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Graph, GraphError, Node};

/// The complete graph `K_n`.
///
/// Connectivity `n - 1`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`.
pub fn complete(n: usize) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::invalid("complete graph requires n >= 1"));
    }
    let mut g = Graph::new(n);
    for u in 0..n as Node {
        for v in (u + 1)..n as Node {
            g.add_edge(u, v)?;
        }
    }
    Ok(g)
}

/// The cycle `C_n` (`n >= 3`). Connectivity 2.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 3`.
pub fn cycle(n: usize) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(GraphError::invalid("cycle requires n >= 3"));
    }
    let mut g = Graph::new(n);
    for u in 0..n as Node {
        g.add_edge(u, (u + 1) % n as Node)?;
    }
    Ok(g)
}

/// The path graph `P_n` on `n >= 1` nodes (named to avoid clashing with
/// [`crate::Path`], the route type).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`.
pub fn path_graph(n: usize) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::invalid("path graph requires n >= 1"));
    }
    let mut g = Graph::new(n);
    for u in 1..n as Node {
        g.add_edge(u - 1, u)?;
    }
    Ok(g)
}

/// The star `K_{1,n-1}`: node 0 joined to all others. Connectivity 1.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 2`.
pub fn star(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::invalid("star requires n >= 2"));
    }
    let mut g = Graph::new(n);
    for v in 1..n as Node {
        g.add_edge(0, v)?;
    }
    Ok(g)
}

/// The wheel `W_n`: a cycle on nodes `1..n` plus hub 0. Connectivity 3.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 4`.
pub fn wheel(n: usize) -> Result<Graph, GraphError> {
    if n < 4 {
        return Err(GraphError::invalid("wheel requires n >= 4"));
    }
    let mut g = Graph::new(n);
    let rim = (n - 1) as Node;
    for i in 0..rim {
        g.add_edge(1 + i, 1 + (i + 1) % rim)?;
        g.add_edge(0, 1 + i)?;
    }
    Ok(g)
}

/// The complete bipartite graph `K_{a,b}` (sides `0..a` and `a..a+b`).
/// Connectivity `min(a, b)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either side is empty.
pub fn complete_bipartite(a: usize, b: usize) -> Result<Graph, GraphError> {
    if a == 0 || b == 0 {
        return Err(GraphError::invalid("complete bipartite requires a, b >= 1"));
    }
    let mut g = Graph::new(a + b);
    for u in 0..a as Node {
        for v in a as Node..(a + b) as Node {
            g.add_edge(u, v)?;
        }
    }
    Ok(g)
}

/// The `rows x cols` grid (mesh). Node `(r, c)` is `r * cols + c`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either dimension is 0.
pub fn grid(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows == 0 || cols == 0 {
        return Err(GraphError::invalid("grid requires rows, cols >= 1"));
    }
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = (r * cols + c) as Node;
            if c + 1 < cols {
                g.add_edge(v, v + 1)?;
            }
            if r + 1 < rows {
                g.add_edge(v, v + cols as Node)?;
            }
        }
    }
    Ok(g)
}

/// The `rows x cols` torus (grid with wraparound). Connectivity 4 when
/// both dimensions are at least 3.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either dimension is < 3
/// (smaller wraparounds create parallel edges).
pub fn torus(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    if rows < 3 || cols < 3 {
        return Err(GraphError::invalid("torus requires rows, cols >= 3"));
    }
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = (r * cols + c) as Node;
            let right = (r * cols + (c + 1) % cols) as Node;
            let down = (((r + 1) % rows) * cols + c) as Node;
            g.add_edge(v, right)?;
            g.add_edge(v, down)?;
        }
    }
    Ok(g)
}

/// The `dim`-dimensional hypercube `Q_dim` on `2^dim` nodes.
/// Connectivity `dim`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `dim == 0` or `dim > 20`
/// (the latter only to bound memory).
///
/// # Example
///
/// ```
/// use ftr_graph::gen;
/// # fn main() -> Result<(), ftr_graph::GraphError> {
/// let q4 = gen::hypercube(4)?;
/// assert_eq!(q4.node_count(), 16);
/// assert_eq!(q4.max_degree(), 4);
/// # Ok(())
/// # }
/// ```
pub fn hypercube(dim: usize) -> Result<Graph, GraphError> {
    if dim == 0 || dim > 20 {
        return Err(GraphError::invalid("hypercube requires 1 <= dim <= 20"));
    }
    let n = 1usize << dim;
    let mut g = Graph::new(n);
    for v in 0..n {
        for b in 0..dim {
            let u = v ^ (1 << b);
            if u > v {
                g.add_edge(v as Node, u as Node)?;
            }
        }
    }
    Ok(g)
}

/// The cube-connected cycles network `CCC_dim`: each hypercube node is
/// replaced by a `dim`-cycle whose members handle one dimension each.
/// 3-regular; connectivity 3 for `dim >= 3`.
///
/// Node `(i, w)` — cycle position `i` in `0..dim`, hypercube word `w` —
/// is numbered `w * dim + i`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `dim < 3` or `dim > 16`.
pub fn cube_connected_cycles(dim: usize) -> Result<Graph, GraphError> {
    if !(3..=16).contains(&dim) {
        return Err(GraphError::invalid(
            "cube-connected cycles requires 3 <= dim <= 16",
        ));
    }
    let words = 1usize << dim;
    let mut g = Graph::new(words * dim);
    let id = |i: usize, w: usize| (w * dim + i) as Node;
    for w in 0..words {
        for i in 0..dim {
            g.add_edge(id(i, w), id((i + 1) % dim, w))?;
            let flipped = w ^ (1 << i);
            if flipped > w {
                g.add_edge(id(i, w), id(i, flipped))?;
            }
        }
    }
    Ok(g)
}

/// The wrapped butterfly `BF(dim)`: levels `0..dim`, words `{0,1}^dim`,
/// with straight and cross edges to the next level (mod `dim`).
/// 4-regular; the paper's "extended butterfly" bounded-degree hypercube
/// realization.
///
/// Node `(level, w)` is numbered `w * dim + level`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `dim < 3` or `dim > 16`
/// (`dim < 3` creates parallel edges).
pub fn wrapped_butterfly(dim: usize) -> Result<Graph, GraphError> {
    if !(3..=16).contains(&dim) {
        return Err(GraphError::invalid(
            "wrapped butterfly requires 3 <= dim <= 16",
        ));
    }
    let words = 1usize << dim;
    let mut g = Graph::new(words * dim);
    let id = |l: usize, w: usize| (w * dim + l) as Node;
    for w in 0..words {
        for l in 0..dim {
            let nl = (l + 1) % dim;
            g.add_edge(id(l, w), id(nl, w))?;
            g.add_edge(id(l, w), id(nl, w ^ (1 << nl)))?;
        }
    }
    Ok(g)
}

/// The circulant graph `C_n(offsets)`: node `i` is adjacent to
/// `i ± s (mod n)` for every offset `s`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`, an offset is 0,
/// or an offset exceeds `n / 2` (which would duplicate or self-loop).
pub fn circulant(n: usize, offsets: &[u32]) -> Result<Graph, GraphError> {
    if n == 0 {
        return Err(GraphError::invalid("circulant requires n >= 1"));
    }
    let mut g = Graph::new(n);
    for &s in offsets {
        if s == 0 || s as usize > n / 2 {
            return Err(GraphError::invalid(format!(
                "circulant offset {s} must satisfy 1 <= s <= n/2 (n = {n})"
            )));
        }
        for i in 0..n {
            g.add_edge(i as Node, ((i + s as usize) % n) as Node)?;
        }
    }
    Ok(g)
}

/// The Harary graph `H_{k,n}`: the minimum-edge `k`-connected graph on
/// `n` nodes. The experiment sweeps use it to dial in connectivity
/// `t + 1` exactly.
///
/// For even `k` this is the circulant with offsets `1..=k/2`; for odd `k`
/// and even `n` the diameters `i — i + n/2` are added.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `k < 2`, `n <= k`, or both
/// `k` and `n` are odd (no Harary graph exists in that case).
///
/// # Example
///
/// ```
/// use ftr_graph::{connectivity, gen};
/// # fn main() -> Result<(), ftr_graph::GraphError> {
/// let g = gen::harary(5, 12)?;
/// assert_eq!(connectivity::vertex_connectivity(&g), 5);
/// # Ok(())
/// # }
/// ```
pub fn harary(k: usize, n: usize) -> Result<Graph, GraphError> {
    if k < 2 {
        return Err(GraphError::invalid("harary requires k >= 2"));
    }
    if n <= k {
        return Err(GraphError::invalid("harary requires n > k"));
    }
    if k % 2 == 1 && n % 2 == 1 {
        return Err(GraphError::invalid("harary with odd k requires even n"));
    }
    let half = (k / 2) as u32;
    let offsets: Vec<u32> = (1..=half).collect();
    let mut g = circulant(n, &offsets)?;
    if k % 2 == 1 {
        for i in 0..n / 2 {
            g.add_edge(i as Node, (i + n / 2) as Node)?;
        }
    }
    Ok(g)
}

/// The undirected binary de Bruijn graph `UB(dim)` on `2^dim` nodes:
/// node `w` is adjacent to `(2w) mod 2^dim`, `(2w + 1) mod 2^dim` and
/// their shift-predecessors. A classic bounded-degree (≤ 4) network
/// from the same design space as the paper's shuffle/butterfly
/// examples; self-loops (at 0 and 2^dim − 1) are dropped.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `dim < 2` or `dim > 16`.
pub fn de_bruijn(dim: usize) -> Result<Graph, GraphError> {
    if !(2..=16).contains(&dim) {
        return Err(GraphError::invalid("de Bruijn requires 2 <= dim <= 16"));
    }
    let n = 1usize << dim;
    let mut g = Graph::new(n);
    for w in 0..n {
        for next in [(2 * w) % n, (2 * w + 1) % n] {
            if w != next {
                g.add_edge(w as Node, next as Node)?;
            }
        }
    }
    Ok(g)
}

/// The Petersen graph: 10 nodes, 3-regular, girth 5, connectivity 3.
///
/// Outer cycle `0..5`, inner pentagram `5..10`.
pub fn petersen() -> Graph {
    let mut g = Graph::new(10);
    for i in 0..5u32 {
        g.add_edge(i, (i + 1) % 5).expect("valid");
        g.add_edge(i, i + 5).expect("valid");
        g.add_edge(i + 5, (i + 2) % 5 + 5).expect("valid");
    }
    g
}

/// An Erdős–Rényi random graph `G(n, p)`: every pair is an edge
/// independently with probability `p`.
///
/// Used for the Section 5 experiments on the two-trees property
/// (`p = c * n^eps / n`).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `p` is not in `[0, 1]`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::invalid("gnp requires 0 <= p <= 1"));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for u in 0..n as Node {
        for v in (u + 1)..n as Node {
            if rng.gen_bool(p) {
                g.add_edge(u, v)?;
            }
        }
    }
    Ok(g)
}

/// A random `d`-regular graph via the configuration model (pairing with
/// rejection and restart).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n * d` is odd, `d >= n`,
/// or no simple pairing is found within an internal retry budget (which
/// for the small `d` used in the experiments essentially never happens).
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Graph, GraphError> {
    if d >= n {
        return Err(GraphError::invalid("random regular requires d < n"));
    }
    if (n * d) % 2 == 1 {
        return Err(GraphError::invalid("random regular requires n*d even"));
    }
    if d == 0 {
        return Ok(Graph::new(n));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    'attempt: for _ in 0..200 {
        let mut stubs: Vec<Node> = (0..n as Node)
            .flat_map(|v| std::iter::repeat_n(v, d))
            .collect();
        // Fisher-Yates shuffle, then pair consecutive stubs.
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..=i);
            stubs.swap(i, j);
        }
        let mut g = Graph::new(n);
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || !g.add_edge(u, v)? {
                continue 'attempt; // self loop or parallel edge: restart
            }
        }
        return Ok(g);
    }
    Err(GraphError::invalid(
        "random regular pairing failed; try a different seed or smaller d",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn complete_counts() {
        let g = complete(6).unwrap();
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.min_degree(), 5);
        assert!(complete(0).is_err());
    }

    #[test]
    fn cycle_counts_and_bounds() {
        let g = cycle(5).unwrap();
        assert_eq!(g.edge_count(), 5);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert!(cycle(2).is_err());
    }

    #[test]
    fn path_graph_shape() {
        let g = path_graph(4).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert!(path_graph(0).is_err());
    }

    #[test]
    fn star_and_wheel() {
        let s = star(5).unwrap();
        assert_eq!(s.degree(0), 4);
        assert!(s.nodes().skip(1).all(|v| s.degree(v) == 1));
        let w = wheel(6).unwrap();
        assert_eq!(w.degree(0), 5);
        assert!(w.nodes().skip(1).all(|v| w.degree(v) == 3));
        assert!(wheel(3).is_err());
    }

    #[test]
    fn bipartite_shape() {
        let g = complete_bipartite(2, 3).unwrap();
        assert_eq!(g.edge_count(), 6);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(complete_bipartite(0, 3).is_err());
    }

    #[test]
    fn grid_and_torus_degrees() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.degree(0), 2); // corner
        let t = torus(3, 4).unwrap();
        assert!(t.nodes().all(|v| t.degree(v) == 4));
        assert_eq!(t.edge_count(), 24);
        assert!(torus(2, 5).is_err());
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(3).unwrap();
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 12);
        assert!(g.nodes().all(|v| g.degree(v) == 3));
        assert_eq!(traversal::diameter(&g, None), Some(3));
        assert!(hypercube(0).is_err());
    }

    #[test]
    fn ccc_structure() {
        let g = cube_connected_cycles(3).unwrap();
        assert_eq!(g.node_count(), 24);
        assert!(g.nodes().all(|v| g.degree(v) == 3));
        assert!(traversal::is_connected(&g, None));
        assert!(cube_connected_cycles(2).is_err());
    }

    #[test]
    fn butterfly_structure() {
        let g = wrapped_butterfly(3).unwrap();
        assert_eq!(g.node_count(), 24);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(traversal::is_connected(&g, None));
        assert!(wrapped_butterfly(2).is_err());
    }

    #[test]
    fn circulant_validation() {
        let g = circulant(8, &[1, 2]).unwrap();
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(circulant(8, &[0]).is_err());
        assert!(circulant(8, &[5]).is_err());
        // offset exactly n/2 gives degree increment of 1 (an involution)
        let h = circulant(8, &[4]).unwrap();
        assert!(h.nodes().all(|v| h.degree(v) == 1));
    }

    #[test]
    fn harary_even_k() {
        let g = harary(4, 10).unwrap();
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.edge_count(), 20);
    }

    #[test]
    fn harary_odd_k_even_n() {
        let g = harary(3, 8).unwrap();
        assert!(g.nodes().all(|v| g.degree(v) == 3));
        assert!(harary(3, 9).is_err());
        assert!(harary(1, 5).is_err());
        assert!(harary(4, 4).is_err());
    }

    #[test]
    fn de_bruijn_structure() {
        let g = de_bruijn(4).unwrap();
        assert_eq!(g.node_count(), 16);
        assert!(g.max_degree() <= 4);
        assert!(traversal::is_connected(&g, None));
        // logarithmic diameter: a length-dim walk rewrites every bit
        assert!(traversal::diameter(&g, None).unwrap() <= 4);
        assert!(de_bruijn(1).is_err());
        assert!(de_bruijn(17).is_err());
    }

    #[test]
    fn petersen_structure() {
        let g = petersen();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 3));
        assert_eq!(traversal::diameter(&g, None), Some(2));
    }

    #[test]
    fn gnp_is_seeded_and_bounded() {
        let a = gnp(30, 0.2, 42).unwrap();
        let b = gnp(30, 0.2, 42).unwrap();
        assert_eq!(a, b);
        let c = gnp(30, 0.2, 43).unwrap();
        assert_ne!(a, c); // overwhelmingly likely
        assert_eq!(gnp(10, 0.0, 1).unwrap().edge_count(), 0);
        assert_eq!(gnp(10, 1.0, 1).unwrap().edge_count(), 45);
        assert!(gnp(10, 1.5, 1).is_err());
    }

    #[test]
    fn random_regular_is_regular() {
        let g = random_regular(20, 4, 7).unwrap();
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        let h = random_regular(20, 4, 7).unwrap();
        assert_eq!(g, h); // deterministic under the same seed
        assert!(random_regular(5, 3, 1).is_err()); // odd n*d
        assert!(random_regular(4, 4, 1).is_err()); // d >= n
        assert_eq!(random_regular(6, 0, 1).unwrap().edge_count(), 0);
    }
}

//! Maximum flow with unit node capacities: vertex-disjoint paths and
//! minimum vertex cuts.
//!
//! The paper's constructions rest on Menger-type arguments: a graph of
//! connectivity `t + 1` has `t + 1` internally node-disjoint paths
//! between any two nodes, and Lemma 2 truncates such paths to build *tree
//! routings* into a separating set. This module implements the classical
//! reduction: every node `v` is split into `v_in → v_out` with capacity
//! one, edges become unit arcs between copies, and maximum flow is found
//! by BFS augmentation (Edmonds–Karp), which is exact and fast for the
//! small flow values (`t + 1`) the constructions need.
//!
//! # Example
//!
//! ```
//! use ftr_graph::{flow, gen};
//!
//! # fn main() -> Result<(), ftr_graph::GraphError> {
//! let g = gen::hypercube(3)?;
//! // Opposite corners of Q_3 are joined by 3 internally disjoint paths.
//! let paths = flow::vertex_disjoint_st_paths(&g, 0, 7, None)?;
//! assert_eq!(paths.len(), 3);
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;

use crate::{Graph, GraphError, Node, NodeSet, Path};

/// Adjacency-list flow network over split nodes with unit capacities.
struct FlowNet {
    head: Vec<i32>,
    to: Vec<u32>,
    next: Vec<i32>,
    cap: Vec<u8>,
}

impl FlowNet {
    fn new(nodes: usize, arc_hint: usize) -> Self {
        FlowNet {
            head: vec![-1; nodes],
            to: Vec::with_capacity(arc_hint * 2),
            next: Vec::with_capacity(arc_hint * 2),
            cap: Vec::with_capacity(arc_hint * 2),
        }
    }

    /// Adds a unit arc `u → v` (and its zero-capacity reverse). Forward
    /// arcs get even indices; `i ^ 1` is the paired arc.
    fn add_arc(&mut self, u: usize, v: usize) {
        for (from, to, cap) in [(u, v, 1u8), (v, u, 0u8)] {
            let idx = self.to.len() as i32;
            self.to.push(to as u32);
            self.cap.push(cap);
            self.next.push(self.head[from]);
            self.head[from] = idx;
        }
    }

    /// Finds one augmenting path `s → t` by BFS and pushes a unit of flow
    /// along it. Returns `false` if `t` is unreachable in the residual
    /// network.
    fn augment(&mut self, s: usize, t: usize, prev_arc: &mut [i32]) -> bool {
        prev_arc.fill(-1);
        prev_arc[s] = -2;
        let mut queue = VecDeque::from([s]);
        'search: while let Some(u) = queue.pop_front() {
            let mut a = self.head[u];
            while a >= 0 {
                let arc = a as usize;
                let v = self.to[arc] as usize;
                if self.cap[arc] > 0 && prev_arc[v] == -1 {
                    prev_arc[v] = a;
                    if v == t {
                        break 'search;
                    }
                    queue.push_back(v);
                }
                a = self.next[arc];
            }
        }
        if prev_arc[t] == -1 {
            return false;
        }
        let mut v = t;
        while v != s {
            let arc = prev_arc[v] as usize;
            self.cap[arc] -= 1;
            self.cap[arc ^ 1] += 1;
            v = self.to[arc ^ 1] as usize;
        }
        true
    }

    /// Consumes the unique unit of saturated flow leaving `from`,
    /// returning the next network node, or `None` if no flow leaves.
    fn consume_flow_step(&mut self, from: usize) -> Option<usize> {
        let mut a = self.head[from];
        while a >= 0 {
            let arc = a as usize;
            // Forward arcs are even; saturated means capacity used up.
            if arc.is_multiple_of(2) && self.cap[arc] == 0 {
                self.cap[arc] = 1;
                return Some(self.to[arc] as usize);
            }
            a = self.next[arc];
        }
        None
    }

    /// Nodes reachable from `s` in the residual network.
    fn residual_reachable(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.head.len()];
        seen[s] = true;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            let mut a = self.head[u];
            while a >= 0 {
                let arc = a as usize;
                let v = self.to[arc] as usize;
                if self.cap[arc] > 0 && !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
                a = self.next[arc];
            }
        }
        seen
    }
}

const fn node_in(v: Node) -> usize {
    2 * v as usize
}

const fn node_out(v: Node) -> usize {
    2 * v as usize + 1
}

fn check_node(g: &Graph, v: Node) -> Result<(), GraphError> {
    if (v as usize) < g.node_count() {
        Ok(())
    } else {
        Err(GraphError::NodeOutOfRange {
            node: v,
            n: g.node_count(),
        })
    }
}

/// Builds the split network for `g`. Nodes listed in `no_internal` get no
/// `v_in → v_out` arc (used for sources, sinks and truncation targets);
/// `extra` additional network nodes are appended after the `2n` copies.
fn build_split_network(g: &Graph, no_internal: &NodeSet, extra: usize) -> FlowNet {
    let n = g.node_count();
    let mut net = FlowNet::new(2 * n + extra, 2 * g.edge_count() + n + extra);
    for v in g.nodes() {
        if !no_internal.contains(v) {
            net.add_arc(node_in(v), node_out(v));
        }
    }
    for (u, v) in g.edges() {
        net.add_arc(node_out(u), node_in(v));
        net.add_arc(node_out(v), node_in(u));
    }
    net
}

/// The number of internally node-disjoint `s`–`t` paths (Menger's local
/// vertex connectivity), computed by max flow. If `limit` is given, the
/// computation stops early once that many paths are found — callers
/// minimizing over pairs use this to avoid wasted augmentations.
///
/// For adjacent `s, t` the direct edge counts as one of the paths.
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfRange`] for invalid nodes and
/// [`GraphError::InvalidParameter`] if `s == t`.
pub fn local_vertex_connectivity(
    g: &Graph,
    s: Node,
    t: Node,
    limit: Option<usize>,
) -> Result<usize, GraphError> {
    check_node(g, s)?;
    check_node(g, t)?;
    if s == t {
        return Err(GraphError::invalid(
            "local connectivity requires distinct endpoints",
        ));
    }
    let mut net = build_split_network(g, &NodeSet::from_nodes(g.node_count(), [s, t]), 0);
    let (src, dst) = (node_out(s), node_in(t));
    let cap = limit.unwrap_or(usize::MAX);
    let mut prev = vec![-1i32; 2 * g.node_count()];
    let mut value = 0;
    while value < cap && net.augment(src, dst, &mut prev) {
        value += 1;
    }
    Ok(value)
}

/// A maximum (or `limit`-capped) family of internally node-disjoint
/// simple paths from `s` to `t`.
///
/// The returned paths share no node except `s` and `t`; their count is
/// the local vertex connectivity (capped by `limit`).
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfRange`] for invalid nodes and
/// [`GraphError::InvalidParameter`] if `s == t`.
pub fn vertex_disjoint_st_paths(
    g: &Graph,
    s: Node,
    t: Node,
    limit: Option<usize>,
) -> Result<Vec<Path>, GraphError> {
    check_node(g, s)?;
    check_node(g, t)?;
    if s == t {
        return Err(GraphError::invalid(
            "disjoint paths require distinct endpoints",
        ));
    }
    let mut net = build_split_network(g, &NodeSet::from_nodes(g.node_count(), [s, t]), 0);
    let (src, dst) = (node_out(s), node_in(t));
    let cap = limit.unwrap_or(usize::MAX);
    let mut prev = vec![-1i32; 2 * g.node_count()];
    let mut value = 0;
    while value < cap && net.augment(src, dst, &mut prev) {
        value += 1;
    }
    let mut paths = Vec::with_capacity(value);
    for _ in 0..value {
        let mut nodes = vec![s];
        let mut cur = net
            .consume_flow_step(src)
            .expect("flow value promises a unit leaving the source");
        loop {
            debug_assert_eq!(cur % 2, 0, "flow walks land on in-copies");
            let v = (cur / 2) as Node;
            nodes.push(v);
            if cur == dst {
                break;
            }
            cur = net
                .consume_flow_step(cur + 1) // v_in -> v_out is implicit; leave from v_out
                .expect("flow conservation");
        }
        paths.push(Path::new(nodes).expect("unit node capacities make flow paths simple"));
    }
    Ok(paths)
}

/// Node-disjoint paths from `s` to *distinct* members of `targets`,
/// internally avoiding all of `targets` (every path stops at its first
/// target — the truncation of the paper's Lemma 2).
///
/// The paths share no node except `s`; as many as possible are returned,
/// capped by `limit`. If `s` has an edge to a returned endpoint, nothing
/// forces that path to be the direct edge — apply the paper's shortcut
/// rule on top (see `ftr-core`'s tree routing builder).
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfRange`] for invalid nodes and
/// [`GraphError::InvalidParameter`] if `targets` is empty, contains `s`,
/// or was sized for a different graph.
pub fn vertex_disjoint_paths_to_set(
    g: &Graph,
    s: Node,
    targets: &NodeSet,
    limit: Option<usize>,
) -> Result<Vec<Path>, GraphError> {
    check_node(g, s)?;
    if targets.capacity() != g.node_count() {
        return Err(GraphError::invalid(
            "target set capacity must equal the graph's node count",
        ));
    }
    if targets.is_empty() {
        return Err(GraphError::invalid("target set must be non-empty"));
    }
    if targets.contains(s) {
        return Err(GraphError::invalid(
            "target set must not contain the source",
        ));
    }
    let n = g.node_count();
    let mut no_internal = targets.clone();
    no_internal.insert(s);
    let mut net = build_split_network(g, &no_internal, 1);
    let sink = 2 * n;
    for m in targets {
        net.add_arc(node_in(m), sink);
    }
    let src = node_out(s);
    let cap = limit.unwrap_or(usize::MAX);
    let mut prev = vec![-1i32; 2 * n + 1];
    let mut value = 0;
    while value < cap && net.augment(src, sink, &mut prev) {
        value += 1;
    }
    let mut paths = Vec::with_capacity(value);
    for _ in 0..value {
        let mut nodes = vec![s];
        let mut cur = net
            .consume_flow_step(src)
            .expect("flow value promises a unit leaving the source");
        loop {
            debug_assert_eq!(cur % 2, 0, "flow walks land on in-copies");
            let v = (cur / 2) as Node;
            nodes.push(v);
            if targets.contains(v) {
                // Consume the m_in -> sink arc so later walks skip it.
                let hop = net.consume_flow_step(cur).expect("target feeds the sink");
                debug_assert_eq!(hop, sink);
                break;
            }
            cur = net.consume_flow_step(cur + 1).expect("flow conservation");
        }
        paths.push(Path::new(nodes).expect("unit node capacities make flow paths simple"));
    }
    Ok(paths)
}

/// A minimum set of nodes (excluding `s` and `t`) whose removal
/// disconnects `s` from `t`.
///
/// # Errors
///
/// * [`GraphError::NodeOutOfRange`] for invalid nodes.
/// * [`GraphError::InvalidParameter`] if `s == t` or `s` and `t` are
///   adjacent (no vertex cut separates adjacent nodes).
pub fn min_st_vertex_cut(g: &Graph, s: Node, t: Node) -> Result<NodeSet, GraphError> {
    check_node(g, s)?;
    check_node(g, t)?;
    if s == t {
        return Err(GraphError::invalid(
            "vertex cut requires distinct endpoints",
        ));
    }
    if g.has_edge(s, t) {
        return Err(GraphError::invalid(
            "no vertex cut separates adjacent nodes",
        ));
    }
    let mut net = build_split_network(g, &NodeSet::from_nodes(g.node_count(), [s, t]), 0);
    let (src, dst) = (node_out(s), node_in(t));
    let mut prev = vec![-1i32; 2 * g.node_count()];
    while net.augment(src, dst, &mut prev) {}
    let reach = net.residual_reachable(src);
    // Every saturated arc crossing the residual-reachable boundary points
    // at some node's copy; that node carries the crossing unit of flow and
    // joins the vertex cut. (Crossing arcs never point at s or t: flow
    // into s_in would violate conservation, and an unsaturated arc into
    // t_in would contradict flow maximality.)
    let mut cut = NodeSet::new(g.node_count());
    for x in 0..net.head.len() {
        if !reach[x] {
            continue;
        }
        let mut a = net.head[x];
        while a >= 0 {
            let arc = a as usize;
            let y = net.to[arc] as usize;
            if arc.is_multiple_of(2) && net.cap[arc] == 0 && !reach[y] {
                let v = (y / 2) as Node;
                debug_assert!(v != s && v != t, "cut never contains the endpoints");
                cut.insert(v);
            }
            a = net.next[arc];
        }
    }
    Ok(cut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, traversal};

    fn assert_internally_disjoint(paths: &[Path], s: Node, t: Option<Node>) {
        let mut seen = std::collections::HashSet::new();
        for p in paths {
            for &v in p.nodes() {
                if v == s || Some(v) == t {
                    continue;
                }
                assert!(seen.insert(v), "node {v} reused across paths");
            }
        }
    }

    #[test]
    fn st_paths_on_cycle() {
        let g = gen::cycle(6).unwrap();
        let paths = vertex_disjoint_st_paths(&g, 0, 3, None).unwrap();
        assert_eq!(paths.len(), 2);
        for p in &paths {
            p.validate_in(&g).unwrap();
            assert_eq!(p.source(), 0);
            assert_eq!(p.target(), 3);
        }
        assert_internally_disjoint(&paths, 0, Some(3));
    }

    #[test]
    fn st_paths_on_complete_graph() {
        let g = gen::complete(5).unwrap();
        let paths = vertex_disjoint_st_paths(&g, 0, 4, None).unwrap();
        // direct edge + 3 two-hop paths
        assert_eq!(paths.len(), 4);
        assert!(paths.iter().any(|p| p.len() == 1));
        assert_internally_disjoint(&paths, 0, Some(4));
    }

    #[test]
    fn st_paths_respect_limit() {
        let g = gen::complete(6).unwrap();
        let paths = vertex_disjoint_st_paths(&g, 0, 5, Some(2)).unwrap();
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn st_paths_count_matches_connectivity_on_hypercube() {
        let g = gen::hypercube(4).unwrap();
        for t in [1u32, 3, 7, 15] {
            let paths = vertex_disjoint_st_paths(&g, 0, t, None).unwrap();
            assert_eq!(paths.len(), 4, "Q4 is 4-connected");
            assert_internally_disjoint(&paths, 0, Some(t));
            for p in &paths {
                p.validate_in(&g).unwrap();
            }
        }
    }

    #[test]
    fn local_connectivity_values() {
        let g = gen::cycle(5).unwrap();
        assert_eq!(local_vertex_connectivity(&g, 0, 2, None).unwrap(), 2);
        assert_eq!(local_vertex_connectivity(&g, 0, 2, Some(1)).unwrap(), 1);
        assert!(local_vertex_connectivity(&g, 0, 0, None).is_err());
        assert!(local_vertex_connectivity(&g, 0, 99, None).is_err());
    }

    #[test]
    fn local_connectivity_disconnected_is_zero() {
        let g = Graph::new(4);
        assert_eq!(local_vertex_connectivity(&g, 0, 3, None).unwrap(), 0);
    }

    #[test]
    fn paths_to_set_truncate_at_first_target() {
        // path graph 0-1-2-3-4 with targets {1, 3}: only one disjoint path
        // from 0, and it must stop at 1 (never reaching 3 through 1).
        let g = gen::path_graph(5).unwrap();
        let targets = NodeSet::from_nodes(5, [1, 3]);
        let paths = vertex_disjoint_paths_to_set(&g, 0, &targets, None).unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].nodes(), &[0, 1]);
    }

    #[test]
    fn paths_to_set_reach_distinct_targets() {
        let g = gen::hypercube(3).unwrap();
        // neighbors of node 7 form a separating set for node 0
        let targets = g.neighbor_set(7);
        let paths = vertex_disjoint_paths_to_set(&g, 0, &targets, None).unwrap();
        assert_eq!(paths.len(), 3);
        let mut endpoints: Vec<Node> = paths.iter().map(Path::target).collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        assert_eq!(endpoints.len(), 3, "endpoints must be distinct");
        assert_internally_disjoint(&paths, 0, None);
        for p in &paths {
            p.validate_in(&g).unwrap();
            assert!(targets.contains(p.target()));
            assert!(p.interior().all(|v| !targets.contains(v)));
        }
    }

    #[test]
    fn paths_to_set_input_validation() {
        let g = gen::cycle(4).unwrap();
        let empty = NodeSet::new(4);
        assert!(vertex_disjoint_paths_to_set(&g, 0, &empty, None).is_err());
        let with_s = NodeSet::from_nodes(4, [0, 2]);
        assert!(vertex_disjoint_paths_to_set(&g, 0, &with_s, None).is_err());
        let wrong_cap = NodeSet::from_nodes(9, [2]);
        assert!(vertex_disjoint_paths_to_set(&g, 0, &wrong_cap, None).is_err());
    }

    #[test]
    fn min_cut_separates() {
        let g = gen::cycle(6).unwrap();
        let cut = min_st_vertex_cut(&g, 0, 3).unwrap();
        assert_eq!(cut.len(), 2);
        assert!(!traversal::is_connected(&g, Some(&cut)));
        assert!(traversal::distance(&g, 0, 3, Some(&cut)) == crate::INFINITY);
    }

    #[test]
    fn min_cut_on_hypercube_has_connectivity_size() {
        let g = gen::hypercube(3).unwrap();
        let cut = min_st_vertex_cut(&g, 0, 7).unwrap();
        assert_eq!(cut.len(), 3);
        assert_eq!(traversal::distance(&g, 0, 7, Some(&cut)), crate::INFINITY);
    }

    #[test]
    fn min_cut_rejects_adjacent() {
        let g = gen::cycle(4).unwrap();
        assert!(min_st_vertex_cut(&g, 0, 1).is_err());
        assert!(min_st_vertex_cut(&g, 0, 0).is_err());
    }

    #[test]
    fn cut_size_equals_flow_value() {
        for seed in 0..5 {
            let g = gen::gnp(24, 0.25, seed).unwrap();
            for (s, t) in [(0u32, 12u32), (3, 20), (5, 23)] {
                if g.has_edge(s, t) {
                    continue;
                }
                let flow = local_vertex_connectivity(&g, s, t, None).unwrap();
                let cut = min_st_vertex_cut(&g, s, t).unwrap();
                assert_eq!(cut.len(), flow, "Menger: cut = flow (seed {seed}, {s}-{t})");
                if flow > 0 {
                    assert_eq!(
                        traversal::distance(&g, s, t, Some(&cut)),
                        crate::INFINITY,
                        "cut must separate"
                    );
                }
            }
        }
    }
}

//! Command-line graph specs shared by every binary that names a
//! topology (`ftr-served`, the `loadgen` bench binary, the `ftr-audit`
//! CLI), so the daemon, the load generator and the auditor always
//! accept the same families.

use crate::{gen, Graph};

/// Parses a graph spec into the graph and a canonical human label.
///
/// Accepted specs: `petersen` | `cycle:N` | `hypercube:D` |
/// `harary:K,N` | `torus:R,C`.
///
/// # Errors
///
/// Returns a human-readable message for unknown families, malformed
/// numbers, or parameters the generator rejects.
pub fn parse_graph_spec(spec: &str) -> Result<(Graph, String), String> {
    let (family, params) = spec.split_once(':').unwrap_or((spec, ""));
    let nums: Vec<usize> = if params.is_empty() {
        Vec::new()
    } else {
        params
            .split(',')
            .map(|t| {
                t.parse()
                    .map_err(|_| format!("bad number {t:?} in {spec:?}"))
            })
            .collect::<Result<_, _>>()?
    };
    let (graph, label) = match (family, nums.as_slice()) {
        ("petersen", []) => (gen::petersen(), "petersen".to_string()),
        ("cycle", [n]) => (
            gen::cycle(*n).map_err(|e| e.to_string())?,
            format!("cycle({n})"),
        ),
        ("hypercube", [d]) => (
            gen::hypercube(*d).map_err(|e| e.to_string())?,
            format!("hypercube({d})"),
        ),
        ("harary", [k, n]) => (
            gen::harary(*k, *n).map_err(|e| e.to_string())?,
            format!("harary({k}, {n})"),
        ),
        ("torus", [r, c]) => (
            gen::torus(*r, *c).map_err(|e| e.to_string())?,
            format!("torus({r}x{c})"),
        ),
        _ => {
            return Err(format!(
                "unknown graph spec {spec:?} \
                 (petersen | cycle:N | hypercube:D | harary:K,N | torus:R,C)"
            ))
        }
    };
    Ok((graph, label))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_family() {
        for (spec, n, label) in [
            ("petersen", 10, "petersen"),
            ("cycle:9", 9, "cycle(9)"),
            ("hypercube:4", 16, "hypercube(4)"),
            ("harary:5,24", 24, "harary(5, 24)"),
            ("torus:3,4", 12, "torus(3x4)"),
        ] {
            let (g, got) = parse_graph_spec(spec).expect(spec);
            assert_eq!(g.node_count(), n, "{spec}");
            assert_eq!(got, label, "{spec}");
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "klein-bottle",
            "cycle",
            "cycle:x",
            "cycle:3,4",
            "harary:5",
            "petersen:7",
            "cycle:1", // generator rejects degenerate parameters
        ] {
            assert!(parse_graph_spec(bad).is_err(), "accepted {bad:?}");
        }
    }
}

//! Structural analysis: short cycles, independence, neighborhood sets
//! (Lemma 15) and the two-trees property (Section 5).
//!
//! Two graph properties gate the paper's main constructions:
//!
//! * A **neighborhood set** — independent nodes with pairwise disjoint
//!   neighbor sets — of size `K` enables the circular (`K ≥ t+1` or
//!   `t+2`) and tri-circular (`K ≥ 6t+9`) routings. Lemma 15 shows the
//!   greedy ball-removal algorithm finds one of size at least
//!   `⌈n/(d²+1)⌉` when the maximum degree is `d`; [`neighborhood_set`]
//!   implements exactly that algorithm.
//! * The **two-trees property** — two roots whose depth-2 neighborhoods
//!   form disjoint trees — enables the bipolar routings. A pair of roots
//!   qualifies iff neither lies on a cycle of length 3 or 4 and their
//!   distance is at least 5 ([`is_two_trees_pair`] checks the definition
//!   directly; [`find_two_trees_roots`] searches using the cycle/distance
//!   characterization).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{traversal, Graph, Node, NodeSet, INFINITY};

/// Returns `true` if `nodes` are pairwise non-adjacent (and distinct).
///
/// # Panics
///
/// Panics if a node is out of range.
pub fn is_independent_set(g: &Graph, nodes: &[Node]) -> bool {
    let mut seen = NodeSet::new(g.node_count());
    for &v in nodes {
        assert!(
            (v as usize) < g.node_count(),
            "node {v} out of range for independence check"
        );
        if !seen.insert(v) {
            return false;
        }
    }
    for (i, &u) in nodes.iter().enumerate() {
        for &v in &nodes[i + 1..] {
            if g.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

/// Returns `true` if `nodes` form a *neighborhood set*: independent
/// nodes whose neighbor sets Γ(m) are pairwise disjoint.
///
/// Equivalently, the nodes are pairwise at distance at least 3.
///
/// # Panics
///
/// Panics if a node is out of range.
pub fn is_neighborhood_set(g: &Graph, nodes: &[Node]) -> bool {
    if !is_independent_set(g, nodes) {
        return false;
    }
    let mut claimed = NodeSet::new(g.node_count());
    for &m in nodes {
        for &x in g.neighbors(m) {
            if !claimed.insert(x) {
                return false;
            }
        }
    }
    true
}

/// Node orderings for the greedy [`neighborhood_set`] algorithm.
///
/// Lemma 15's bound holds for *any* order; the choice only affects which
/// maximal set is found (and, in practice, its size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionOrder {
    /// Consider candidates in increasing node id (the paper's
    /// "arbitrary" choice, made deterministic).
    Ascending,
    /// Consider low-degree candidates first; their balls are smaller, so
    /// this usually yields larger sets.
    MinDegreeFirst,
    /// Uniformly random order under the given seed.
    Random(u64),
}

/// Greedily builds a maximal neighborhood set (Lemma 15).
///
/// Starting from all nodes as candidates, repeatedly pick the next
/// candidate `x` (per `order`), add it to the set, and discard every node
/// within distance 2 of `x`. Each step discards at most `d² + 1` nodes,
/// so the result has at least `⌈n/(d²+1)⌉` members — the bound verified
/// by experiment E6.
///
/// # Example
///
/// ```
/// use ftr_graph::analysis::{self, SelectionOrder};
/// use ftr_graph::gen;
///
/// # fn main() -> Result<(), ftr_graph::GraphError> {
/// let g = gen::hypercube(4)?;
/// let m = analysis::neighborhood_set(&g, SelectionOrder::Ascending);
/// assert!(analysis::is_neighborhood_set(&g, &m));
/// let d = g.max_degree();
/// assert!(m.len() >= g.node_count().div_ceil(d * d + 1));
/// # Ok(())
/// # }
/// ```
pub fn neighborhood_set(g: &Graph, order: SelectionOrder) -> Vec<Node> {
    let n = g.node_count();
    let mut candidates: Vec<Node> = (0..n as Node).collect();
    match order {
        SelectionOrder::Ascending => {}
        SelectionOrder::MinDegreeFirst => {
            candidates.sort_by_key(|&v| g.degree(v));
        }
        SelectionOrder::Random(seed) => {
            let mut rng = SmallRng::seed_from_u64(seed);
            for i in (1..candidates.len()).rev() {
                let j = rng.gen_range(0..=i);
                candidates.swap(i, j);
            }
        }
    }
    let mut removed = NodeSet::new(n);
    let mut set = Vec::new();
    for x in candidates {
        if removed.contains(x) {
            continue;
        }
        set.push(x);
        removed.insert(x);
        for &y in g.neighbors(x) {
            removed.insert(y);
            for &z in g.neighbors(y) {
                removed.insert(z);
            }
        }
    }
    set
}

/// The length of a shortest cycle through `v`, or `None` if `v` lies on
/// no cycle.
///
/// Computed exactly: a cycle through `v` consists of two distinct edges
/// at `v` plus a path between the corresponding neighbors avoiding `v`,
/// so the answer is `2 + min over neighbor pairs of their distance in
/// G − v`.
///
/// # Panics
///
/// Panics if `v` is not a node of `g`.
pub fn shortest_cycle_through(g: &Graph, v: Node) -> Option<u32> {
    assert!((v as usize) < g.node_count(), "node {v} out of range");
    let nbrs = g.neighbors(v);
    if nbrs.len() < 2 {
        return None;
    }
    let avoid = NodeSet::from_nodes(g.node_count(), [v]);
    let mut best = INFINITY;
    for (i, &u) in nbrs.iter().enumerate() {
        if best == 3 {
            break; // a triangle is the minimum possible
        }
        let dist = traversal::bfs_distances(g, u, Some(&avoid));
        for &w in &nbrs[i + 1..] {
            let d = dist[w as usize];
            if d != INFINITY {
                best = best.min(d + 2);
            }
        }
    }
    (best != INFINITY).then_some(best)
}

/// Returns `true` if `v` lies on a cycle of length 3 or 4 — the
/// disqualifying condition for two-trees roots (Lemma 24's Events 1–2).
///
/// # Panics
///
/// Panics if `v` is not a node of `g`.
pub fn on_short_cycle(g: &Graph, v: Node) -> bool {
    matches!(shortest_cycle_through(g, v), Some(c) if c <= 4)
}

/// The girth of `g` (length of its shortest cycle), or `None` for
/// forests.
///
/// # Example
///
/// ```
/// use ftr_graph::{analysis, gen};
/// # fn main() -> Result<(), ftr_graph::GraphError> {
/// assert_eq!(analysis::girth(&gen::petersen()), Some(5));
/// assert_eq!(analysis::girth(&gen::hypercube(3)?), Some(4));
/// assert_eq!(analysis::girth(&gen::path_graph(5)?), None);
/// # Ok(())
/// # }
/// ```
pub fn girth(g: &Graph) -> Option<u32> {
    let mut best = INFINITY;
    for v in g.nodes() {
        if best == 3 {
            break;
        }
        if let Some(c) = shortest_cycle_through(g, v) {
            best = best.min(c);
        }
    }
    (best != INFINITY).then_some(best)
}

/// Checks the two-trees property for the specific roots `(r1, r2)` by
/// the definition of Section 5: the sets Γ(r1), Γ(r2), Γ(x) − {r1} for
/// every x ∈ Γ(r1), and Γ(y) − {r2} for every y ∈ Γ(r2) — together with
/// the roots themselves — must all be disjoint, i.e. the depth-2
/// neighborhoods of the roots form two disjoint trees.
///
/// # Panics
///
/// Panics if a root is out of range.
pub fn is_two_trees_pair(g: &Graph, r1: Node, r2: Node) -> bool {
    let n = g.node_count();
    assert!((r1 as usize) < n && (r2 as usize) < n, "roots out of range");
    if r1 == r2 {
        return false;
    }
    let mut claimed = NodeSet::from_nodes(n, [r1, r2]);
    if claimed.len() != 2 {
        return false;
    }
    for (root, other) in [(r1, r2), (r2, r1)] {
        // Γ(root) must be fresh...
        for &x in g.neighbors(root) {
            if x != other && !claimed.insert(x) {
                return false;
            }
            if x == other {
                return false; // adjacent roots share no disjoint trees
            }
        }
        // ...and so must every Γ(x) − {root} for x ∈ Γ(root).
        for &x in g.neighbors(root) {
            for &y in g.neighbors(x) {
                if y != root && !claimed.insert(y) {
                    return false;
                }
            }
        }
    }
    true
}

/// Searches for roots witnessing the two-trees property.
///
/// Candidates are nodes of degree ≥ 1 lying on no cycle of length ≤ 4;
/// a pair of candidates at distance ≥ 5 is validated with
/// [`is_two_trees_pair`] and returned. Returns `None` if no pair
/// qualifies (in particular for dense graphs, matching the paper's
/// density threshold discussion).
///
/// # Example
///
/// ```
/// use ftr_graph::{analysis, gen};
/// # fn main() -> Result<(), ftr_graph::GraphError> {
/// let g = gen::cycle(12)?;
/// let (r1, r2) = analysis::find_two_trees_roots(&g).expect("long cycles qualify");
/// assert!(analysis::is_two_trees_pair(&g, r1, r2));
/// assert!(analysis::find_two_trees_roots(&gen::complete(6)?).is_none());
/// # Ok(())
/// # }
/// ```
pub fn find_two_trees_roots(g: &Graph) -> Option<(Node, Node)> {
    let candidates: Vec<Node> = g
        .nodes()
        .filter(|&v| g.degree(v) >= 1 && !on_short_cycle(g, v))
        .collect();
    for (i, &r1) in candidates.iter().enumerate() {
        let dist = traversal::bfs_distances(g, r1, None);
        for &r2 in &candidates[i + 1..] {
            let d = dist[r2 as usize];
            if d >= 5 && is_two_trees_pair(g, r1, r2) {
                return Some((r1, r2));
            }
        }
    }
    None
}

/// Histogram of node degrees: entry `d` counts nodes of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0; g.max_degree() + 1];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn independence() {
        let g = gen::cycle(6).unwrap();
        assert!(is_independent_set(&g, &[0, 2, 4]));
        assert!(!is_independent_set(&g, &[0, 1]));
        assert!(!is_independent_set(&g, &[0, 0]));
        assert!(is_independent_set(&g, &[]));
    }

    #[test]
    fn neighborhood_set_definition() {
        let g = gen::cycle(9).unwrap();
        assert!(is_neighborhood_set(&g, &[0, 3, 6]));
        // 0 and 2 share neighbor 1
        assert!(!is_neighborhood_set(&g, &[0, 2]));
        // adjacent nodes are not independent
        assert!(!is_neighborhood_set(&g, &[0, 1]));
    }

    #[test]
    fn greedy_respects_lemma_15_bound() {
        for g in [
            gen::cycle(30).unwrap(),
            gen::hypercube(5).unwrap(),
            gen::torus(5, 6).unwrap(),
            gen::petersen(),
            gen::harary(4, 40).unwrap(),
            gen::gnp(60, 0.05, 3).unwrap(),
        ] {
            let d = g.max_degree();
            let n = g.node_count();
            for order in [
                SelectionOrder::Ascending,
                SelectionOrder::MinDegreeFirst,
                SelectionOrder::Random(11),
            ] {
                let m = neighborhood_set(&g, order);
                assert!(is_neighborhood_set(&g, &m), "{g:?} {order:?}");
                assert!(
                    m.len() >= n.div_ceil(d * d + 1),
                    "Lemma 15 bound violated on {g:?} with {order:?}"
                );
            }
        }
    }

    #[test]
    fn greedy_is_deterministic_per_order() {
        let g = gen::torus(6, 6).unwrap();
        let a = neighborhood_set(&g, SelectionOrder::Random(5));
        let b = neighborhood_set(&g, SelectionOrder::Random(5));
        assert_eq!(a, b);
    }

    #[test]
    fn shortest_cycles() {
        let g = gen::cycle(7).unwrap();
        assert_eq!(shortest_cycle_through(&g, 0), Some(7));
        let k4 = gen::complete(4).unwrap();
        assert_eq!(shortest_cycle_through(&k4, 2), Some(3));
        let p = gen::path_graph(5).unwrap();
        assert_eq!(shortest_cycle_through(&p, 2), None);
        let q3 = gen::hypercube(3).unwrap();
        assert_eq!(shortest_cycle_through(&q3, 0), Some(4));
    }

    #[test]
    fn short_cycle_detection() {
        let k4 = gen::complete(4).unwrap();
        assert!(on_short_cycle(&k4, 0));
        let c5 = gen::cycle(5).unwrap();
        assert!(!on_short_cycle(&c5, 0));
        let q3 = gen::hypercube(3).unwrap();
        assert!(on_short_cycle(&q3, 5));
    }

    #[test]
    fn girth_known_values() {
        assert_eq!(girth(&gen::petersen()), Some(5));
        assert_eq!(girth(&gen::complete(5).unwrap()), Some(3));
        assert_eq!(girth(&gen::cycle(11).unwrap()), Some(11));
        assert_eq!(girth(&gen::hypercube(4).unwrap()), Some(4));
        assert_eq!(girth(&gen::star(7).unwrap()), None);
        assert_eq!(girth(&gen::cube_connected_cycles(3).unwrap()), Some(3));
    }

    #[test]
    fn two_trees_on_long_cycle() {
        let g = gen::cycle(10).unwrap();
        assert!(is_two_trees_pair(&g, 0, 5));
        assert!(!is_two_trees_pair(&g, 0, 4)); // distance 4: depth-2 balls meet
        assert!(!is_two_trees_pair(&g, 0, 0));
    }

    #[test]
    fn two_trees_rejects_short_cycles() {
        // distance is fine but r1 sits on a triangle
        let mut g = gen::cycle(12).unwrap();
        g.add_edge(11, 1).unwrap(); // triangle 11-0-1
        assert!(!is_two_trees_pair(&g, 0, 6));
        assert!(is_two_trees_pair(&g, 3, 9));
    }

    #[test]
    fn finder_agrees_with_checker() {
        for g in [
            gen::cycle(14).unwrap(),
            gen::cube_connected_cycles(5).unwrap(),
        ] {
            let (r1, r2) = find_two_trees_roots(&g).expect("girth >= 5 and diameter >= 5");
            assert!(is_two_trees_pair(&g, r1, r2));
        }
    }

    #[test]
    fn finder_fails_on_dense_or_small_diameter_graphs() {
        assert!(find_two_trees_roots(&gen::complete(8).unwrap()).is_none());
        assert!(find_two_trees_roots(&gen::hypercube(4).unwrap()).is_none()); // 4-cycles everywhere
        assert!(find_two_trees_roots(&gen::torus(5, 5).unwrap()).is_none()); // grid squares are 4-cycles
        assert!(find_two_trees_roots(&gen::cycle(9).unwrap()).is_none()); // max distance 4
    }

    #[test]
    fn finder_exhaustiveness_matches_brute_force_on_small_graphs() {
        // The finder considers only candidates of degree >= 1 (an
        // isolated node passes `is_two_trees_pair` vacuously but roots no
        // usable tree), so the brute force quantifies over the same pairs.
        for seed in 0..10 {
            let g = gen::gnp(18, 0.08, seed).unwrap();
            let found = find_two_trees_roots(&g).is_some();
            let brute = (0..18u32).any(|a| {
                g.degree(a) >= 1
                    && (0..18u32).any(|b| a != b && g.degree(b) >= 1 && is_two_trees_pair(&g, a, b))
            });
            assert_eq!(found, brute, "seed {seed}");
        }
    }

    #[test]
    fn degree_histogram_counts() {
        let g = gen::star(5).unwrap();
        let h = degree_histogram(&g);
        assert_eq!(h, vec![0, 4, 0, 0, 1]);
    }
}
